"""GP inner-loop overhaul tests: scatter plans, iteration arena, WA kernel.

PR 7's contract is that every rewrite of the global-place gradient pipeline
is *bitwise* neutral: the plan-based wirelength/density paths must match the
legacy ``np.add.at`` / ``np.maximum.at`` reference paths (kept as
``_reference_*`` helpers) bit for bit, the ``wa_wirelength`` kernel must
match the serial plan for any worker count, and the arena/optimizer buffer
reuse must not change a single bit of the optimization trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.suite import load_benchmark
from repro.core.pin_attraction import PinAttractionObjective, PinPairSet
from repro.parallel import KernelPool, SerialShardRunner
from repro.placement.arena import IterationArena
from repro.placement.density import ElectrostaticDensity
from repro.placement.global_placer import GlobalPlacer, PlacementConfig
from repro.placement.initial import initial_placement
from repro.placement.objective import PlacementObjective
from repro.placement.wirelength import WeightedAverageWirelength

DESIGNS = ("sb_mini_18", "sb_mini_4", "sb_cong_1")


def _design(name="sb_mini_18", scale=0.5):
    return load_benchmark(name, scale=scale)


def _positions(design, seed):
    rng = np.random.default_rng(seed)
    x, y = initial_placement(design, seed=seed)
    x += rng.normal(0.0, 2.5, x.size)
    y += rng.normal(0.0, 2.5, y.size)
    return x, y


# ----------------------------------------------------------------------
# Scatter-plan bitwise properties
# ----------------------------------------------------------------------
class TestWirelengthPlan:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        scale=st.floats(0.3, 0.8),
        gamma=st.floats(0.5, 25.0),
        seed=st.integers(0, 2**31 - 1),
        weighted=st.booleans(),
    )
    def test_plan_matches_reference_bitwise(self, name, scale, gamma, seed, weighted):
        design = _design(name, scale)
        x, y = _positions(design, seed)
        model = WeightedAverageWirelength(design, gamma=gamma)
        weights = None
        if weighted:
            weights = np.random.default_rng(seed).uniform(0.25, 4.0, design.num_nets)
        plan = model.evaluate(x, y, net_weights=weights)
        ref = model._reference_evaluate(x, y, net_weights=weights)
        assert plan.value == ref.value
        assert np.array_equal(plan.grad_x, ref.grad_x)
        assert np.array_equal(plan.grad_y, ref.grad_y)

    def test_valid_net_filter_matches_isin(self):
        design = _design("sb_mini_18", 0.5)
        core = design.arrays
        model = WeightedAverageWirelength(design)
        counts = np.diff(core.net_pin_offsets)
        valid_nets = np.nonzero(counts >= 2)[0]
        # The O(P) count-lookup mask must select exactly the pins the old
        # O(P log N) np.isin filter selected.
        isin_mask = np.isin(core.csr_net, valid_nets)
        assert np.array_equal(model._csr_pins, core.net_pin_index[isin_mask])
        assert np.array_equal(model._csr_net, core.csr_net[isin_mask])
        assert np.array_equal(model._valid_nets, valid_nets)

    def test_directional_matches_reference_directional_bitwise(self):
        # Direct pairing of the staged axis kernel with its legacy twin
        # (the whole-evaluate parity test above covers them only jointly).
        design = _design("sb_mini_18", 0.5)
        x, y = _positions(design, 7)
        model = WeightedAverageWirelength(design, gamma=3.0)
        weights = np.random.default_rng(7).uniform(0.25, 4.0, design.num_nets)
        pin_x, pin_y = design.arrays.pin_positions(x, y)
        for coord in (pin_x, pin_y):
            c = coord[model._csr_pins]
            value, grad = model._directional(c, weights, axis="x")
            ref_value, ref_grad = model._reference_directional(coord, weights)
            assert value == ref_value
            assert np.array_equal(grad, ref_grad)

    def test_arena_reuse_is_bitwise_neutral_and_allocation_free(self):
        design = _design("sb_mini_4", 0.5)
        x, y = _positions(design, 7)
        bare = WeightedAverageWirelength(design, gamma=3.0)
        pooled = WeightedAverageWirelength(design, gamma=3.0)
        pooled.arena = IterationArena()
        expect = bare.evaluate(x, y)
        for _ in range(3):
            got = pooled.evaluate(x, y)
            assert got.value == expect.value
            assert np.array_equal(got.grad_x, expect.grad_x)
            assert np.array_equal(got.grad_y, expect.grad_y)
        steady = pooled.arena.allocations
        pooled.evaluate(x, y)
        assert pooled.arena.allocations == steady

    def test_precomputed_pin_positions_match_internal_gather(self):
        design = _design("sb_mini_18", 0.4)
        x, y = _positions(design, 11)
        model = WeightedAverageWirelength(design, gamma=4.0)
        pin_x, pin_y = design.arrays.pin_positions(x, y)
        a = model.evaluate(x, y)
        b = model.evaluate(x, y, pin_x=pin_x, pin_y=pin_y)
        assert a.value == b.value
        assert np.array_equal(a.grad_x, b.grad_x)

    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        scale=st.floats(0.3, 0.8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_hpwl_plan_matches_reference_bitwise(self, name, scale, seed):
        # The planned hpwl_per_net must reproduce the legacy reduceat-plus-
        # fallback pass bit for bit, including the historical grouping split
        # between clean-segment and fallback nets.
        design = _design(name, scale)
        core = design.arrays
        x, y = _positions(design, seed)
        plan = core.hpwl_per_net(x, y)
        ref = core._reference_hpwl_per_net(x, y)
        assert np.array_equal(plan, ref)


class TestDensityPlan:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        scale=st.floats(0.3, 0.8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_splat_matches_reference_bitwise(self, name, scale, seed):
        design = _design(name, scale)
        x, y = _positions(design, seed)
        model = ElectrostaticDensity(design)
        assert np.array_equal(model._splat(x, y), model._reference_splat(x, y))

    def test_solve_field_matches_legacy_np_gradient(self):
        from scipy import fft as spfft

        design = _design("sb_mini_18", 0.5)
        x, y = _positions(design, 3)
        model = ElectrostaticDensity(design)
        density = model._splat(x, y)
        psi, ex, ey = model._solve_field(density)
        rho = density / model.bin_area
        rho = rho - rho.mean()
        psi_ref = spfft.idctn(
            spfft.dctn(rho, type=2, norm="ortho") * model._inv_denom,
            type=2,
            norm="ortho",
        )
        gu, gv = np.gradient(psi_ref, model.bin_w, model.bin_h)
        assert np.array_equal(psi, psi_ref)
        assert np.array_equal(ex, -gu)
        assert np.array_equal(ey, -gv)


class TestExtraTermPlans:
    def test_pin_attraction_matches_reference_bitwise(self):
        design = _design("sb_mini_18", 0.5)
        x, y = _positions(design, 5)
        rng = np.random.default_rng(5)
        pairs = PinPairSet()
        num_pins = design.arrays.num_pins
        chosen = rng.choice(num_pins, size=(64, 2), replace=False)
        pairs.set_weights(
            {(int(i), int(j)): float(w) for (i, j), w in zip(chosen, rng.uniform(1, 8, 64))}
        )
        term = PinAttractionObjective(design, pairs)
        v1, gx1, gy1 = term.evaluate(x, y)
        v2, gx2, gy2 = term._reference_evaluate(x, y)
        assert v1 == v2
        assert np.array_equal(gx1, gx2)
        assert np.array_equal(gy1, gy2)

    def test_evaluate_extra_out_buffers_bitwise(self):
        design = _design("sb_mini_4", 0.5)
        x, y = _positions(design, 9)
        pairs = PinPairSet()
        pairs.set_weights({(0, 1): 3.0, (2, 5): 1.5})
        objective = PlacementObjective()
        objective.add_term(PinAttractionObjective(design, pairs))
        n = design.arrays.num_instances
        values_a, gx_a, gy_a = objective.evaluate_extra(x, y, n)
        out_x = np.full(n, 123.0)  # stale garbage must be zeroed
        out_y = np.full(n, -7.0)
        values_b, gx_b, gy_b = objective.evaluate_extra(x, y, n, out_x=out_x, out_y=out_y)
        assert values_a == values_b
        assert gx_b is out_x and gy_b is out_y
        assert np.array_equal(gx_a, gx_b)
        assert np.array_equal(gy_a, gy_b)


# ----------------------------------------------------------------------
# Sharded WA kernel
# ----------------------------------------------------------------------
class TestWirelengthKernel:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(DESIGNS),
        scale=st.floats(0.3, 0.7),
        gamma=st.floats(0.5, 20.0),
        shards=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_sharded_matches_serial_bitwise(self, name, scale, gamma, shards, seed):
        design = _design(name, scale)
        x, y = _positions(design, seed)
        weights = np.random.default_rng(seed).uniform(0.25, 4.0, design.num_nets)
        serial = WeightedAverageWirelength(design, gamma=gamma)
        sharded = WeightedAverageWirelength(
            design, gamma=gamma, workers=shards, runner=SerialShardRunner(shards)
        )
        a = serial.evaluate(x, y, net_weights=weights)
        b = sharded.evaluate(x, y, net_weights=weights)
        assert a.value == b.value
        assert np.array_equal(a.grad_x, b.grad_x)
        assert np.array_equal(a.grad_y, b.grad_y)

    def test_gamma_change_reaches_workers(self):
        design = _design("sb_mini_4", 0.5)
        x, y = _positions(design, 1)
        serial = WeightedAverageWirelength(design, gamma=2.0)
        sharded = WeightedAverageWirelength(design, runner=SerialShardRunner(3))
        sharded.set_gamma(2.0)
        a = serial.evaluate(x, y)
        b = sharded.evaluate(x, y)
        assert a.value == b.value and np.array_equal(a.grad_x, b.grad_x)

    def test_real_pool_matches_serial_bitwise(self):
        design = _design("sb_mini_18", 0.4)
        x, y = _positions(design, 2)
        serial = WeightedAverageWirelength(design, gamma=4.0).evaluate(x, y)
        with KernelPool(2) as pool:
            pooled = WeightedAverageWirelength(design, gamma=4.0, runner=pool).evaluate(
                x, y
            )
        assert pooled.value == serial.value
        assert np.array_equal(pooled.grad_x, serial.grad_x)
        assert np.array_equal(pooled.grad_y, serial.grad_y)


# ----------------------------------------------------------------------
# Optimizer buffer reuse and full-loop equivalence
# ----------------------------------------------------------------------
class TestInnerLoopBitwise:
    def test_full_placement_matches_legacy_paths(self):
        """End-to-end: plan-based placer == placer forced onto legacy paths."""
        config = PlacementConfig(max_iterations=40, min_iterations=10, seed=0)
        plan = GlobalPlacer(load_benchmark("sb_mini_4", scale=0.4), config)
        legacy = GlobalPlacer(load_benchmark("sb_mini_4", scale=0.4), config)
        legacy.wirelength.evaluate = legacy.wirelength._reference_evaluate
        legacy.density._splat = legacy.density._reference_splat
        a = plan.run()
        b = legacy.run()
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)
        assert a.hpwl == b.hpwl
        assert a.history.hpwl == b.history.hpwl

    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_full_placement_sharded_matches_serial(self, shards):
        config = PlacementConfig(max_iterations=30, min_iterations=10, seed=0)
        serial = GlobalPlacer(load_benchmark("sb_mini_4", scale=0.4), config).run()
        placer = GlobalPlacer(load_benchmark("sb_mini_4", scale=0.4), config)
        runner = SerialShardRunner(shards)
        placer.wirelength._runner = runner
        placer.wirelength._runner_resolved = True
        placer.density._runner = runner
        placer.density._runner_resolved = True
        sharded = placer.run()
        assert np.array_equal(serial.x, sharded.x)
        assert np.array_equal(serial.y, sharded.y)

    def test_history_every_is_trajectory_neutral(self):
        base = GlobalPlacer(
            load_benchmark("sb_mini_4", scale=0.4),
            PlacementConfig(max_iterations=25, min_iterations=5, seed=0),
        ).run()
        sparse = GlobalPlacer(
            load_benchmark("sb_mini_4", scale=0.4),
            PlacementConfig(max_iterations=25, min_iterations=5, seed=0, history_every=7),
        ).run()
        assert np.array_equal(base.x, sparse.x)
        assert np.array_equal(base.y, sparse.y)
        assert base.hpwl == sparse.hpwl  # recomputed after an unrecorded last iter
        assert sparse.history.iterations == [
            i for i in base.history.iterations if i % 7 == 0
        ]
        assert sparse.history.hpwl == [
            h for i, h in zip(base.history.iterations, base.history.hpwl) if i % 7 == 0
        ]

    def test_history_every_validation(self):
        placer = GlobalPlacer(
            load_benchmark("sb_mini_4", scale=0.3),
            PlacementConfig(max_iterations=1, history_every=0),
        )
        with pytest.raises(ValueError, match="history_every"):
            placer.run()

    def test_steady_state_arena_allocations_stop_growing(self):
        placer = GlobalPlacer(
            load_benchmark("sb_mini_4", scale=0.4),
            PlacementConfig(max_iterations=6, min_iterations=6, seed=0),
        )
        placer.run()
        steady = placer.arena.allocations
        assert steady > 0
        # Keep stepping the already-warm loop: no new arena buffers.
        placer._optimizer.step_once(placer._gradient)
        placer._optimizer.step_once(placer._gradient)
        assert placer.arena.allocations == steady

    def test_gradient_seconds_populated(self):
        placer = GlobalPlacer(
            load_benchmark("sb_mini_4", scale=0.3),
            PlacementConfig(max_iterations=3, min_iterations=3, seed=0),
        )
        placer.run()
        assert set(placer.gradient_seconds) == {
            "wirelength",
            "density",
            "extra",
            "scatter",
        }
        assert all(v >= 0.0 for v in placer.gradient_seconds.values())
        assert placer.gradient_seconds["wirelength"] > 0.0

    def test_optimizer_does_not_alias_reused_gradient_buffers(self):
        """grad_fn may return the same buffers every call (the arena does);
        the optimizer must keep its own BB history copies."""
        from repro.placement.nesterov import NesterovOptimizer

        rng = np.random.default_rng(0)
        n = 32
        x0 = rng.uniform(0, 100, n)
        y0 = rng.uniform(0, 100, n)
        mask = np.ones(n, dtype=bool)
        gx_buf = np.empty(n)
        gy_buf = np.empty(n)

        def grad_reused(x, y):
            gx_buf[:] = 0.1 * (x - 50.0)
            gy_buf[:] = 0.1 * (y - 50.0)
            return gx_buf, gy_buf

        def grad_fresh(x, y):
            return 0.1 * (x - 50.0), 0.1 * (y - 50.0)

        opt_a = NesterovOptimizer(x0, y0, movable_mask=mask, min_step=0.01, max_step=10.0)
        opt_b = NesterovOptimizer(x0, y0, movable_mask=mask, min_step=0.01, max_step=10.0)
        for _ in range(10):
            xa, ya = opt_a.step_once(grad_reused)
            xb, yb = opt_b.step_once(grad_fresh)
            assert np.array_equal(xa, xb)
            assert np.array_equal(ya, yb)
            assert opt_a.step == opt_b.step

    def test_optimizer_returns_fresh_major_arrays(self):
        """Returned solutions escape to history/results: never recycled."""
        from repro.placement.nesterov import NesterovOptimizer

        rng = np.random.default_rng(1)
        n = 16
        opt = NesterovOptimizer(
            rng.uniform(0, 10, n),
            rng.uniform(0, 10, n),
            movable_mask=np.ones(n, dtype=bool),
            min_step=0.01,
            max_step=5.0,
        )

        def grad(x, y):
            return 0.05 * x, 0.05 * y

        seen = []
        for _ in range(6):
            x, y = opt.step_once(grad)
            for old_x, old_y, _, _ in seen:
                assert old_x is not x and old_y is not y
            seen.append((x, y, x.copy(), y.copy()))
        # Earlier solutions must be untouched by later iterations.
        for old_x, old_y, snap_x, snap_y in seen[:-1]:
            assert np.array_equal(old_x, snap_x)
            assert np.array_equal(old_y, snap_y)
