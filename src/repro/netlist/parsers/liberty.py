"""Simplified Liberty (.lib) parser.

Supported subset (a tiny slice of the real format, enough for the RC/NLDM
style delays used by the STA engine)::

    library (name) {
      wire_resistance : 0.002 ;
      wire_capacitance : 0.00016 ;
      cell (INV_X1) {
        area : 2.0 ;
        ff (...) { }                      /* marks the cell sequential */
        pin (a) {
          direction : input ;
          capacitance : 0.0015 ;
          clock : true ;                  /* optional */
        }
        pin (o) {
          direction : output ;
          timing () {
            related_pin : "a" ;
            intrinsic : 10.0 ;            /* simplified linear model */
            load_slope : 350.0 ;
            /* or a lookup table: */
            cell_delay (lut) {
              index_1 ("0.001, 0.01, 0.1");
              values  ("12.0, 20.0, 95.0");
            }
          }
        }
      }
    }

Delays populate :class:`repro.netlist.TimingArcSpec`, either as the
``intrinsic``/``load_slope`` linear form or as a load->delay table.
Cell width/height are not Liberty concepts; cells parsed from Liberty get a
square footprint of ``sqrt(area)`` unless merged with a LEF-parsed library.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.library import (
    CellType,
    Library,
    LibraryPin,
    PinDirection,
    TimingArcSpec,
)


def parse_liberty_file(path: str, library: Optional[Library] = None) -> Library:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_liberty(handle.read(), library)


def parse_liberty(text: str, library: Optional[Library] = None) -> Library:
    """Parse Liberty text into a :class:`Library`."""
    text = _strip_comments(text)
    root = _parse_group(text)
    lib_name = root.args[0] if root.args else "liberty"
    lib = library if library is not None else Library(lib_name)
    if "wire_resistance" in root.attributes:
        lib.wire_resistance_per_unit = float(root.attributes["wire_resistance"])
    if "wire_capacitance" in root.attributes:
        lib.wire_capacitance_per_unit = float(root.attributes["wire_capacitance"])
    for group in root.children:
        if group.name == "cell":
            cell = _build_cell(group)
            lib.add_cell(cell)
    return lib


class _Group:
    """Generic Liberty group: ``name (args) { attributes / children }``."""

    def __init__(self, name: str, args: List[str]) -> None:
        self.name = name
        self.args = args
        self.attributes: Dict[str, str] = {}
        self.children: List["_Group"] = []

    def find(self, name: str) -> List["_Group"]:
        return [c for c in self.children if c.name == name]


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


# Note: these patterns are used with ``pattern.match(text, pos)`` /
# ``pattern.search(text, pos)``, so they must not carry a '^' anchor (which
# would only match at the very start of the string).
_GROUP_RE = re.compile(r"\s*([\w]+)\s*\(([^)]*)\)\s*\{")
_ATTR_RE = re.compile(r"\s*([\w]+)\s*:\s*([^;]+);")
_COMPLEX_ATTR_RE = re.compile(r"\s*([\w]+)\s*\(([^)]*)\)\s*;")


def _parse_group(text: str, start: int = 0) -> _Group:
    match = _GROUP_RE.search(text, start)
    if match is None:
        raise ValueError("No Liberty group found")
    name = match.group(1)
    args = [a.strip().strip('"') for a in match.group(2).split(",") if a.strip()]
    group = _Group(name, args)
    pos = match.end()
    _parse_body(text, pos, group)
    return group


def _parse_body(text: str, pos: int, group: _Group) -> int:
    """Parse the body of ``group`` starting right after its '{'; return the
    index just past the matching '}'."""
    while pos < len(text):
        # Skip whitespace.
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        if pos >= len(text):
            break
        if text[pos] == "}":
            return pos + 1
        nested = _GROUP_RE.match(text, pos)
        if nested is not None:
            child = _Group(
                nested.group(1),
                [a.strip().strip('"') for a in nested.group(2).split(",") if a.strip()],
            )
            group.children.append(child)
            pos = _parse_body(text, nested.end(), child)
            continue
        attr = _ATTR_RE.match(text, pos)
        if attr is not None:
            group.attributes[attr.group(1)] = attr.group(2).strip().strip('"')
            pos = attr.end()
            continue
        complex_attr = _COMPLEX_ATTR_RE.match(text, pos)
        if complex_attr is not None:
            group.attributes[complex_attr.group(1)] = complex_attr.group(2).strip().strip('"')
            pos = complex_attr.end()
            continue
        # Unknown token: skip to end of line to stay robust.
        newline = text.find("\n", pos)
        pos = len(text) if newline == -1 else newline + 1
    return pos


def _build_cell(group: _Group) -> CellType:
    name = group.args[0] if group.args else "unnamed"
    area = float(group.attributes.get("area", 1.0))
    side = math.sqrt(max(area, 1e-12))
    is_sequential = bool(group.find("ff")) or bool(group.find("latch"))
    cell = CellType(name, width=side, height=side, is_sequential=is_sequential)

    arcs: List[Tuple[str, str, TimingArcSpec]] = []
    for pin_group in group.find("pin"):
        pin_name = pin_group.args[0]
        direction = PinDirection.from_string(pin_group.attributes.get("direction", "input"))
        capacitance = float(pin_group.attributes.get("capacitance", 0.0))
        is_clock = pin_group.attributes.get("clock", "false").lower() == "true"
        cell.add_pin(
            LibraryPin(pin_name, direction, capacitance=capacitance, is_clock=is_clock)
        )
        for timing in pin_group.find("timing"):
            related = timing.attributes.get("related_pin", "").strip('"')
            if not related:
                continue
            table = _extract_table(timing)
            arc = TimingArcSpec(
                from_pin=related,
                to_pin=pin_name,
                intrinsic=float(timing.attributes.get("intrinsic", 0.0)),
                load_slope=float(timing.attributes.get("load_slope", 0.0)),
                load_table=table,
                is_clock_to_q=is_sequential,
            )
            arcs.append((related, pin_name, arc))
    for _, _, arc in arcs:
        if arc.from_pin in cell.pins and arc.to_pin in cell.pins:
            cell.add_arc(arc)
    return cell


def _extract_table(timing: _Group) -> Optional[Tuple[Tuple[float, float], ...]]:
    for lut in timing.find("cell_delay") + timing.find("cell_rise") + timing.find("cell_fall"):
        index = lut.attributes.get("index_1")
        values = lut.attributes.get("values")
        if index is None or values is None:
            continue
        loads = [float(v) for v in index.replace('"', "").split(",") if v.strip()]
        delays = [float(v) for v in values.replace('"', "").split(",") if v.strip()]
        if len(loads) == len(delays) and loads:
            return tuple(zip(loads, delays))
    return None
