"""``python -m repro.analysis`` — the contract linter as a module entry."""

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
