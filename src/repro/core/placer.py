"""The Efficient-TDP flow (Fig. 1 of the paper).

The flow wires together the substrates:

1. run DREAMPlace-style nonlinear global placement (wirelength + density);
2. once the cell distribution has stabilized (``timing_start_iteration``),
   run a path-level timing analysis every ``m`` iterations: STA, critical
   path extraction with ``report_timing_endpoint(n, 1)`` over all failing
   endpoints, and the Eq. 9 pin-pair weight update;
3. the pin-to-pin attraction term (quadratic distance loss, Eq. 8/10) joins
   the objective with multiplier ``beta`` and pulls critical pin pairs
   together during the remaining iterations;
4. Abacus legalization, then evaluation with the shared evaluator.

Hyper-parameter defaults follow Sec. IV: ``beta = 2.5e-5`` (with an optional
automatic rescaling because the absolute value is engine-specific), ``m =
15``, ``w0 = 10``, ``w1 = 0.2``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.losses import make_loss
from repro.core.path_extraction import CriticalPathExtractor, ExtractionConfig
from repro.core.pin_attraction import PinAttractionObjective, PinPairSet
from repro.evaluation.evaluator import EvaluationReport, Evaluator
from repro.netlist.design import Design
from repro.placement.global_placer import (
    GlobalPlacer,
    PlacementConfig,
    PlacementHistory,
    PlacementResult,
)
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer
from repro.timing.constraints import TimingConstraints
from repro.timing.report import PathExtractionStats
from repro.timing.sta import STAEngine
from repro.utils.logging import get_logger
from repro.utils.profiling import RuntimeProfiler

logger = get_logger("core.placer")


@dataclass
class EfficientTDPConfig:
    """Configuration of the Efficient-TDP flow."""

    # Placement engine schedule.
    max_iterations: int = 450
    timing_start_iteration: int = 150
    min_timing_iterations: int = 120
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    # Paper hyper-parameters (Sec. IV).
    beta: float = 2.5e-5
    beta_mode: str = "auto"        # "auto": rescale beta against the WL gradient
    beta_auto_ratio: float = 4.0   # per-pair attraction force vs per-cell WL force
    timing_update_interval: int = 15   # m
    w0: float = 10.0
    w1: float = 0.2
    loss: str = "quadratic"
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    # Post-processing.
    legalize: bool = True
    verbose: bool = False

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            min_iterations=self.timing_start_iteration + self.min_timing_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
        )


@dataclass
class TDPResult:
    """Everything a flow run produces."""

    x: np.ndarray
    y: np.ndarray
    evaluation: EvaluationReport
    placement: PlacementResult
    history: PlacementHistory
    extraction_stats: List[PathExtractionStats]
    profiler: RuntimeProfiler
    runtime_seconds: float
    num_pin_pairs: int

    def summary(self) -> dict:
        return {
            "design": self.evaluation.design_name,
            "hpwl": self.evaluation.hpwl,
            "tns": self.evaluation.tns,
            "wns": self.evaluation.wns,
            "runtime_sec": round(self.runtime_seconds, 2),
            "iterations": self.placement.iterations,
            "pin_pairs": self.num_pin_pairs,
        }


class EfficientTDPlacer:
    """Timing-driven global placement by efficient critical path extraction."""

    def __init__(
        self,
        design: Design,
        config: Optional[EfficientTDPConfig] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else EfficientTDPConfig()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.profiler = RuntimeProfiler()

        with self.profiler.section("io"):
            self.sta = STAEngine(design, self.constraints)
            self.extractor = CriticalPathExtractor(self.sta, self.config.extraction)
            self.pairs = PinPairSet(w0=self.config.w0, w1=self.config.w1)
            self.attraction = PinAttractionObjective(
                design,
                self.pairs,
                loss=make_loss(self.config.loss),
                beta=self.config.beta,
            )
            self.placer = GlobalPlacer(
                design, self.config.placement_config(), profiler=self.profiler
            )
            self.placer.add_objective_term(self.attraction)
            self.placer.add_callback(self._timing_callback)
        self._beta_calibrated = self.config.beta_mode != "auto"
        self._timing_rounds = 0

    # ------------------------------------------------------------------
    def _timing_callback(
        self, placer: GlobalPlacer, iteration: int, x: np.ndarray, y: np.ndarray
    ) -> None:
        cfg = self.config
        if iteration < cfg.timing_start_iteration:
            return
        if (iteration - cfg.timing_start_iteration) % cfg.timing_update_interval != 0:
            return
        with self.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
            paths, _stats = self.extractor.extract(result)
        with self.profiler.section("weighting"):
            self.pairs.update_from_paths(paths, self.sta.graph, result.wns)
            if not self._beta_calibrated and len(self.pairs) > 0:
                self._calibrate_beta(placer, x, y)
        # The objective just changed; momentum accumulated under the previous
        # objective is stale and can destabilize the Nesterov iteration.
        placer.reset_optimizer_momentum()
        self._timing_rounds += 1
        placer.history.record_extra("tns", iteration, result.tns)
        placer.history.record_extra("wns", iteration, result.wns)
        if cfg.verbose:
            logger.info(
                "timing iter %d: tns=%.1f wns=%.1f pairs=%d",
                iteration,
                result.tns,
                result.wns,
                len(self.pairs),
            )

    def _calibrate_beta(self, placer: GlobalPlacer, x: np.ndarray, y: np.ndarray) -> None:
        """Scale beta so the *average per-pair* attraction force is a fixed
        fraction of the *average per-cell* wirelength force.

        The paper's absolute ``beta = 2.5e-5`` is tied to DREAMPlace's
        internal gradient scaling; reproducing the relative strength of the
        two forces is what transfers across engines.  Normalizing per pair /
        per cell keeps the calibration independent of how many pairs have
        been extracted so far.
        """
        wl = placer.wirelength.evaluate(x, y, net_weights=placer.net_weights)
        wl_norm = float(np.abs(wl.grad_x).sum() + np.abs(wl.grad_y).sum())
        num_movable = max(int(self.design.arrays.movable_mask.sum()), 1)
        pp_norm = self.attraction.gradient_norm(x, y)
        num_pairs = max(len(self.pairs), 1)
        if pp_norm > 1e-12 and wl_norm > 1e-12:
            per_cell_wl = wl_norm / num_movable
            per_pair_pp = pp_norm / num_pairs
            self.attraction.weight = self.config.beta_auto_ratio * per_cell_wl / per_pair_pp
            self._beta_calibrated = True
            logger.debug("calibrated beta to %.3e", self.attraction.weight)

    # ------------------------------------------------------------------
    def run(self) -> TDPResult:
        """Run the full flow and return the evaluated placement."""
        start = time.perf_counter()
        placement = self.placer.run()
        x, y = placement.x, placement.y

        if self.config.legalize:
            with self.profiler.section("legalization"):
                legalizer = AbacusLegalizer(self.design)
                legal = legalizer.legalize(x, y)
                if not legal.success:
                    logger.warning(
                        "Abacus failed to place %d cells; falling back to greedy",
                        legal.num_failed,
                    )
                    legal = GreedyLegalizer(self.design).legalize(x, y)
                x, y = legal.x, legal.y
                self.design.set_positions(x, y)

        with self.profiler.section("io"):
            evaluation = Evaluator(self.design, self.constraints).evaluate(x, y)
        runtime = time.perf_counter() - start
        return TDPResult(
            x=x,
            y=y,
            evaluation=evaluation,
            placement=placement,
            history=placement.history,
            extraction_stats=list(self.extractor.history),
            profiler=self.profiler,
            runtime_seconds=runtime,
            num_pin_pairs=len(self.pairs),
        )
