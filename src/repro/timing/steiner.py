"""Net routing topologies for RC tree construction.

Global placement does not know the routed topology of a net, so timing-driven
placers estimate it.  Two estimators are provided:

* :func:`star_topology` — every pin connects to a virtual center node (the
  pin centroid).  O(p) and fully vectorizable; the default the STA engine
  uses during placement iterations.
* :func:`mst_topology` — rectilinear minimum spanning tree over the pins
  (Prim's algorithm on Manhattan distance), rooted at the driver.  A closer
  approximation of a Steiner route for analysis/reporting.

Both return a :class:`NetTopology`: a tree of nodes (pins plus optional
virtual nodes) with per-edge lengths, which :class:`repro.timing.rc_tree.RCTree`
converts into resistors and capacitors.  Edges are stored as flat parent /
child / length arrays (the form the RC evaluation consumes); the tuple-list
``edges`` view is materialized on demand for tests and debugging.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class NetTopology:
    """Tree topology of one net.

    ``node_xy`` holds coordinates for every node; nodes ``0..num_pins-1``
    correspond to the net's pins in their original order (driver first when
    the caller puts it first), higher indices are virtual (Steiner/star)
    nodes.  ``edge_parent`` / ``edge_child`` / ``edge_length`` describe a
    tree rooted at ``root`` (the driver's node), parent-before-child.
    """

    __slots__ = ("node_xy", "edge_parent", "edge_child", "edge_length", "root", "num_pins")

    def __init__(
        self,
        node_xy: np.ndarray,
        edges,
        root: int,
        num_pins: int,
    ) -> None:
        self.node_xy = node_xy
        if isinstance(edges, tuple) and len(edges) == 3 and isinstance(edges[0], np.ndarray):
            parent, child, length = edges
        elif len(edges) == 0:
            parent = np.zeros(0, dtype=np.int64)
            child = np.zeros(0, dtype=np.int64)
            length = np.zeros(0, dtype=np.float64)
        else:
            parent = np.array([e[0] for e in edges], dtype=np.int64)
            child = np.array([e[1] for e in edges], dtype=np.int64)
            length = np.array([e[2] for e in edges], dtype=np.float64)
        self.edge_parent = parent
        self.edge_child = child
        self.edge_length = length
        self.root = root
        self.num_pins = num_pins

    @property
    def num_edges(self) -> int:
        return int(self.edge_parent.size)

    @property
    def edges(self) -> List[Tuple[int, int, float]]:
        """Tuple-list view of the edge arrays (compat/debug convenience)."""
        return [
            (int(p), int(c), float(length))
            for p, c, length in zip(self.edge_parent, self.edge_child, self.edge_length)
        ]

    @property
    def total_length(self) -> float:
        return float(self.edge_length.sum())

    def children(self, node: int) -> List[Tuple[int, float]]:
        mask = self.edge_parent == node
        return [
            (int(c), float(length))
            for c, length in zip(self.edge_child[mask], self.edge_length[mask])
        ]


def star_topology(
    pin_x: Sequence[float],
    pin_y: Sequence[float],
    driver_index: int = 0,
) -> NetTopology:
    """Star topology: driver -> virtual center -> every sink.

    Degenerate nets (fewer than two pins) yield an empty edge list.  Two-pin
    nets connect driver and sink directly without a virtual node, which both
    matches physical routing and keeps the Elmore delay exact for that case.
    """
    xs = np.asarray(pin_x, dtype=np.float64)
    ys = np.asarray(pin_y, dtype=np.float64)
    num_pins = xs.size
    if num_pins < 2:
        return NetTopology(np.stack([xs, ys], axis=1), [], driver_index, num_pins)
    if num_pins == 2:
        sink = 1 - driver_index
        length = float(abs(xs[0] - xs[1]) + abs(ys[0] - ys[1]))
        node_xy = np.stack([xs, ys], axis=1)
        return NetTopology(node_xy, [(driver_index, sink, length)], driver_index, num_pins)

    center_x = float(xs.mean())
    center_y = float(ys.mean())
    node_xy = np.vstack([np.stack([xs, ys], axis=1), [[center_x, center_y]]])
    center = num_pins
    # Edge order matches the historical per-pin loop: the driver->center edge
    # first, then center->sink edges in pin order.
    sinks = np.delete(np.arange(num_pins, dtype=np.int64), driver_index)
    lengths = np.abs(xs - center_x) + np.abs(ys - center_y)
    parent = np.concatenate([[driver_index], np.full(sinks.size, center, dtype=np.int64)])
    child = np.concatenate([[center], sinks])
    length = np.concatenate([[lengths[driver_index]], lengths[sinks]])
    return NetTopology(node_xy, (parent, child, length), driver_index, num_pins)


def mst_topology(
    pin_x: Sequence[float],
    pin_y: Sequence[float],
    driver_index: int = 0,
    *,
    max_pins_exact: int = 64,
) -> NetTopology:
    """Rectilinear MST topology rooted at the driver (Prim's algorithm).

    Nets larger than ``max_pins_exact`` pins fall back to the star topology;
    the O(p^2) Prim construction would dominate runtime on huge fan-out nets
    (clock or reset trees), exactly the nets whose topology a placer cannot
    meaningfully estimate anyway.
    """
    xs = np.asarray(pin_x, dtype=np.float64)
    ys = np.asarray(pin_y, dtype=np.float64)
    num_pins = xs.size
    if num_pins < 2:
        return NetTopology(np.stack([xs, ys], axis=1), [], driver_index, num_pins)
    if num_pins > max_pins_exact:
        return star_topology(pin_x, pin_y, driver_index)

    in_tree = np.zeros(num_pins, dtype=bool)
    in_tree[driver_index] = True
    # best_dist[i]: cheapest Manhattan distance from i to the current tree.
    best_dist = np.abs(xs - xs[driver_index]) + np.abs(ys - ys[driver_index])
    best_parent = np.full(num_pins, driver_index, dtype=np.int64)
    edge_parent = np.zeros(num_pins - 1, dtype=np.int64)
    edge_child = np.zeros(num_pins - 1, dtype=np.int64)
    edge_length = np.zeros(num_pins - 1, dtype=np.float64)
    for e in range(num_pins - 1):
        candidates = np.where(~in_tree, best_dist, np.inf)
        nxt = int(np.argmin(candidates))
        edge_parent[e] = best_parent[nxt]
        edge_child[e] = nxt
        edge_length[e] = best_dist[nxt]
        in_tree[nxt] = True
        dist_to_new = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
        improved = (~in_tree) & (dist_to_new < best_dist)
        best_dist = np.where(improved, dist_to_new, best_dist)
        best_parent = np.where(improved, nxt, best_parent)

    node_xy = np.stack([xs, ys], axis=1)
    return NetTopology(
        node_xy, (edge_parent, edge_child, edge_length), driver_index, num_pins
    )


def half_perimeter(pin_x: Sequence[float], pin_y: Sequence[float]) -> float:
    """HPWL of a pin set; convenience used in tests against topology lengths."""
    xs = np.asarray(pin_x, dtype=np.float64)
    ys = np.asarray(pin_y, dtype=np.float64)
    if xs.size < 2:
        return 0.0
    return float((xs.max() - xs.min()) + (ys.max() - ys.min()))
