"""Fixture: @steady_state function honoring the allocation contract."""

import numpy as np


def steady_state(fn):
    return fn


@steady_state
def hot_loop_body(state, grad):
    np.multiply(grad, 0.5, out=state.work)
    np.maximum(state.work, 1.0, out=state.work)
    np.copyto(state.copy_buf, grad)
    state.int_buf[...] = state.work
    total = float(np.sum(state.work))
    folded = np.bincount(state.idx, weights=state.work, minlength=8)
    viewed = grad.astype(np.float64, copy=False)
    return total, folded, viewed


def cold_path_setup(n):
    # Not steady-state: allocation is fine here.
    return np.zeros(n, dtype=np.float64)
