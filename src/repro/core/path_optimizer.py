"""Single-path optimization study (Fig. 3 of the paper).

The paper visualizes what each distance loss does to one critical path: the
most critical path is extracted from a coarse placement, the cells on that
path are optimized to convergence under the HPWL / linear / quadratic
pin-pair losses (everything else frozen), and the resulting path slack is
compared.  The quadratic loss spreads the path's cells evenly (no overly long
segment), which is what minimizes the Elmore-dominated path delay.

:class:`SinglePathOptimizer` reproduces that study on any design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.losses import PairLoss, make_loss
from repro.netlist.design import Design
from repro.timing.report import TimingPath, report_timing
from repro.timing.sta import STAEngine


@dataclass
class PathOptimizationResult:
    """Outcome of optimizing one path under one loss."""

    loss_name: str
    slack_before: float
    slack_after: float
    path_length_before: float
    path_length_after: float
    positions: Tuple[np.ndarray, np.ndarray]
    iterations: int
    # (iteration, path slack) samples recorded during the descent when the
    # optimizer was asked to track the trajectory (``track_slack_every``).
    slack_history: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        return self.slack_after - self.slack_before


class SinglePathOptimizer:
    """Optimize the cells of one timing path under a pin-pair distance loss.

    The study's STA queries move only the handful of instances on one path,
    which is exactly the incremental engine's best case: with
    ``incremental=True`` (the default) every ``update_timing`` after the
    first seeds from the cached annotations and re-propagates only the dirty
    frontier.  ``move_tolerance`` stays 0, so the results are bitwise
    identical to the full recompute (see the parity test).
    """

    def __init__(
        self,
        design: Design,
        engine: Optional[STAEngine] = None,
        *,
        incremental: bool = True,
    ) -> None:
        self.design = design
        self.engine = engine if engine is not None else STAEngine(design)
        self.incremental = bool(incremental)

    def _update_timing(self, x=None, y=None):
        """STA update routed through the incremental path when enabled.

        The per-call override works on any engine: a full pass (which seeds
        the incremental caches) runs automatically the first time.
        """
        if self.incremental:
            return self.engine.update_timing(x, y, incremental=True)
        return self.engine.update_timing(x, y)

    # ------------------------------------------------------------------
    def worst_path(self) -> TimingPath:
        """The single most critical path of the current placement."""
        self._update_timing()
        paths, _ = report_timing(self.engine, 1)
        if not paths:
            raise RuntimeError("Design has no constrained timing paths")
        return paths[0]

    def _path_slack(self, path: TimingPath, result) -> float:
        """Slack of this specific path under ``result``'s arc delays.

        The endpoint's pin slack reflects whatever path is worst *now*; the
        Fig. 3 study tracks the originally extracted path, so its slack is
        recomputed from that path's own arcs.
        """
        arrival = float(result.arrival[path.startpoint]) + float(
            sum(result.arc_delay[a] for a in path.arcs)
        )
        return path.required - arrival

    def path_wirelength(self, path: TimingPath, x: np.ndarray, y: np.ndarray) -> float:
        """Total Manhattan length of the path's net segments."""
        graph = self.engine.graph
        px, py = self.design.pin_positions(x, y)
        total = 0.0
        for i, j in path.pin_pairs(graph):
            total += abs(px[i] - px[j]) + abs(py[i] - py[j])
        return float(total)

    # ------------------------------------------------------------------
    def optimize(
        self,
        path: TimingPath,
        loss: PairLoss | str,
        *,
        max_iterations: int = 300,
        step_fraction: float = 0.02,
        tolerance: float = 1e-4,
        track_slack_every: int = 0,
    ) -> PathOptimizationResult:
        """Optimize the movable cells on ``path`` under ``loss`` until convergence.

        Only the instances owning the path's pins move; path endpoints that
        belong to fixed instances (ports) or flip-flops outside the path stay
        put, mirroring the paper's per-path visualization.  Gradient descent
        with a die-relative step size and simple halving on non-decrease.

        ``track_slack_every=N`` additionally samples the path's slack every
        ``N`` gradient iterations (an STA update per sample — affordable
        because only the path's instances are dirty, so the incremental
        engine re-propagates a tiny frontier).
        """
        loss_obj = loss if isinstance(loss, PairLoss) else make_loss(loss)
        design = self.design
        arrays = design.arrays
        graph = self.engine.graph

        x, y = design.positions()
        x = x.copy()
        y = y.copy()
        before = self._update_timing(x, y)
        slack_before = self._path_slack(path, before)
        length_before = self.path_wirelength(path, x, y)

        pairs = path.pin_pairs(graph)
        if not pairs:
            return PathOptimizationResult(
                loss_name=loss_obj.name,
                slack_before=slack_before,
                slack_after=slack_before,
                path_length_before=length_before,
                path_length_after=length_before,
                positions=(x, y),
                iterations=0,
            )
        pin_i = np.array([p[0] for p in pairs], dtype=np.int64)
        pin_j = np.array([p[1] for p in pairs], dtype=np.int64)
        weights = np.ones(len(pairs), dtype=np.float64)
        inst_i = arrays.pin_instance[pin_i]
        inst_j = arrays.pin_instance[pin_j]

        movable = np.unique(np.concatenate([inst_i, inst_j]))
        movable = movable[~arrays.inst_fixed[movable]]
        # Anchor the path's startpoint and endpoint instances (registers or
        # ports): the study moves only the combinational cells in between,
        # otherwise every distance loss would trivially collapse the whole
        # path onto a single point.
        anchors = {
            int(arrays.pin_instance[path.startpoint]),
            int(arrays.pin_instance[path.endpoint]),
        }
        movable = np.array([m for m in movable if int(m) not in anchors], dtype=np.int64)
        if movable.size == 0:
            movable = np.unique(np.concatenate([inst_i, inst_j]))
            movable = movable[~arrays.inst_fixed[movable]]

        die = design.die
        step = step_fraction * max(die.width, die.height)
        previous_value = np.inf
        iterations_used = 0
        slack_history: List[Tuple[int, float]] = []
        for iteration in range(1, max_iterations + 1):
            iterations_used = iteration
            px = x[arrays.pin_instance] + arrays.pin_offset_x
            py = y[arrays.pin_instance] + arrays.pin_offset_y
            value, grad_dx, grad_dy = loss_obj.evaluate(
                px[pin_i] - px[pin_j], py[pin_i] - py[pin_j], weights
            )
            grad_x = np.zeros(arrays.num_instances)
            grad_y = np.zeros(arrays.num_instances)
            np.add.at(grad_x, inst_i, grad_dx)
            np.add.at(grad_x, inst_j, -grad_dx)
            np.add.at(grad_y, inst_i, grad_dy)
            np.add.at(grad_y, inst_j, -grad_dy)

            norm = max(np.abs(grad_x[movable]).max(initial=0.0),
                       np.abs(grad_y[movable]).max(initial=0.0))
            if norm <= 1e-15:
                break
            x[movable] -= step * grad_x[movable] / norm
            y[movable] -= step * grad_y[movable] / norm
            x[movable] = np.clip(x[movable], die.xl, die.xh - arrays.inst_width[movable])
            y[movable] = np.clip(y[movable], die.yl, die.yh - arrays.inst_height[movable])

            if track_slack_every > 0 and iteration % track_slack_every == 0:
                sampled = self._update_timing(x, y)
                slack_history.append((iteration, self._path_slack(path, sampled)))

            if value > previous_value - tolerance:
                step *= 0.7
                if step < 1e-3:
                    break
            previous_value = value

        after = self._update_timing(x, y)
        slack_after = self._path_slack(path, after)
        length_after = self.path_wirelength(path, x, y)
        # Restore the engine's cached timing to the design's stored placement.
        self._update_timing()
        return PathOptimizationResult(
            loss_name=loss_obj.name,
            slack_before=slack_before,
            slack_after=slack_after,
            path_length_before=length_before,
            path_length_after=length_after,
            positions=(x, y),
            iterations=iterations_used,
            slack_history=slack_history,
        )

    def compare_losses(
        self,
        losses: Optional[List[str]] = None,
        *,
        max_iterations: int = 300,
    ) -> List[PathOptimizationResult]:
        """Run the Fig. 3 study: optimize the worst path under each loss."""
        names = losses if losses is not None else ["hpwl", "linear", "quadratic"]
        path = self.worst_path()
        return [
            self.optimize(path, name, max_iterations=max_iterations) for name in names
        ]
