"""Placement evaluation (ICCAD-2015 evaluation-kit stand-in).

Every placer in the comparison is scored with the same :class:`Evaluator`
(same STA settings, same wirelength definition), mirroring how the paper
evaluates all DEFs with the contest's official kit to keep the comparison
fair.
"""

from repro.evaluation.evaluator import EvaluationReport, Evaluator, evaluate_placement
from repro.evaluation.metrics import average_ratio, ratio_table, format_table

__all__ = [
    "EvaluationReport",
    "Evaluator",
    "evaluate_placement",
    "average_ratio",
    "ratio_table",
    "format_table",
]
