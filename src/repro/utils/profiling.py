"""Lightweight runtime profiling for the Fig. 4 runtime-breakdown experiment.

The paper reports, for DREAMPlace 4.0 and for the proposed method, how total
runtime splits between IO, gradient computation, timing analysis, weighting,
legalization, and "others".  The placers in this library record component
times into a :class:`RuntimeProfiler` so the benchmark harness can regenerate
that breakdown without any external tooling.

Since the unified tracing subsystem (:mod:`repro.obs`) landed, the profiler
is a *view* over span data: when a tracer is active, each
:meth:`RuntimeProfiler.section` additionally records a ``profile.<name>``
span, and the component total is fed from the span's measured duration so
the legacy breakdown and the trace agree bitwise on the same clock reads.
This module (with ``repro.obs``) is one of the two blessed raw-timing call
sites enforced by the ``raw-timing`` contract rule.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.obs import active_tracer


@dataclass
class Timer:
    """Accumulating wall-clock timer for one named component."""

    name: str
    total: float = 0.0
    calls: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"Timer '{self.name}' is already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"Timer '{self.name}' was not started")
        elapsed = time.perf_counter() - self._start
        self.total += elapsed
        self.calls += 1
        self._start = None
        return elapsed

    @property
    def running(self) -> bool:
        return self._start is not None


class RuntimeProfiler:
    """Collect per-component wall-clock time for a placement run.

    Components mirror Fig. 4 of the paper: ``io``, ``gradient``,
    ``timing_analysis``, ``weighting``, ``legalization``, ``others``.
    Arbitrary component names are accepted so ablations can add their own.
    """

    STANDARD_COMPONENTS = (
        "io",
        "gradient",
        "timing_analysis",
        "weighting",
        "legalization",
        "others",
    )

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}
        self._wall_start = time.perf_counter()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Context manager timing one component section.

        With tracing active the section is recorded as a ``profile.<name>``
        span and the component total is the span's duration, so the legacy
        breakdown stays a view over the trace rather than a second clock.
        """
        tracer = active_tracer()
        if tracer is None:
            timer = self._timers.setdefault(name, Timer(name))
            timer.start()
            try:
                yield
            finally:
                timer.stop()
        else:
            handle = tracer.begin(f"profile.{name}")
            try:
                yield
            finally:
                self.add(name, tracer.end(handle))

    def add(self, name: str, seconds: float) -> None:
        """Manually add ``seconds`` to component ``name``."""
        timer = self._timers.setdefault(name, Timer(name))
        timer.total += seconds
        timer.calls += 1

    def total(self, name: str) -> float:
        timer = self._timers.get(name)
        return timer.total if timer is not None else 0.0

    @property
    def elapsed(self) -> float:
        """Wall-clock time since the profiler was created."""
        return time.perf_counter() - self._wall_start

    def breakdown(self, total_elapsed: float | None = None) -> Dict[str, float]:
        """Return per-component seconds, adding an ``others`` remainder.

        The remainder is the wall time not attributed to any explicit
        section, matching the paper's "Others" slice.  ``total_elapsed``
        overrides the profiler's own lifetime; pass the flow's measured run
        time when the profiler object outlives the run (it is created at flow
        construction and queried much later by the benchmark harness).
        """
        result = {name: timer.total for name, timer in self._timers.items()}
        accounted = sum(result.values())
        elapsed = self.elapsed if total_elapsed is None else total_elapsed
        others = max(0.0, elapsed - accounted)
        result["others"] = result.get("others", 0.0) + others
        return result

    def normalized_breakdown(
        self,
        reference_total: float | None = None,
        *,
        total_elapsed: float | None = None,
    ) -> Dict[str, float]:
        """Return the breakdown as fractions of ``reference_total``.

        When ``reference_total`` is omitted the profiler's own elapsed time is
        used, so the fractions sum to ~1.  Passing another run's total allows
        the Fig. 4 style normalization against DREAMPlace 4.0's runtime.
        """
        ref = self.elapsed if reference_total is None else reference_total
        if ref <= 0:
            raise ValueError("reference_total must be positive")
        return {
            name: seconds / ref
            for name, seconds in self.breakdown(total_elapsed=total_elapsed).items()
        }

    def merge(self, other: "RuntimeProfiler") -> None:
        """Fold another profiler's component totals into this one."""
        for name, timer in other._timers.items():
            self.add(name, timer.total)
