"""DREAMPlace 4.0-style baseline: momentum-based net weighting.

Every ``m`` iterations after the timing-start iteration, the flow runs STA,
derives each net's criticality from its worst pin slack, and updates the net
weights with momentum (Eq. 5 of the paper; see
:class:`repro.weighting.MomentumNetWeighting`).  The heavier nets then pull
their cells together through the ordinary weighted-wirelength gradient.

This class also serves as the paper's "w/o Path Extraction" ablation arm,
which replaces path-level extraction with exactly this pin-level,
momentum-weighted scheme.  The flow itself is a pipeline composition:
``timing_weight(net_weight) -> global_place -> legalize -> evaluate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.dreamplace import BaselineResult, baseline_result_from_flow
from repro.flow.presets import build_stages
from repro.flow.runner import FlowRunner
from repro.netlist.design import Design
from repro.placement.global_placer import PlacementConfig
from repro.timing.constraints import TimingConstraints
from repro.utils.profiling import RuntimeProfiler


@dataclass
class DreamPlace4Config:
    """Schedule and weighting knobs of the net-weighting baseline."""

    max_iterations: int = 450
    timing_start_iteration: int = 150
    min_timing_iterations: int = 120
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    timing_update_interval: int = 15
    # The weighting aggressiveness is calibrated so the baseline lands in the
    # operating envelope DREAMPlace 4.0 itself reports (~6% HPWL overhead on
    # the contest designs).  Larger boosts trade HPWL for TNS aggressively on
    # the small synthetic suite; see EXPERIMENTS.md for that sensitivity.
    momentum_decay: float = 0.75
    max_boost: float = 0.75
    max_weight: float = 6.0
    # MCMM corners spec (None, "fast,typ,slow", or Corner objects).
    corners: Optional[object] = None
    verbose: bool = False
    # Kernel-pool workers for the density / congestion / STA hot paths
    # (0 = serial; see repro.parallel for the bit-exactness guarantee).
    kernel_workers: int = 0
    # Record placement history every N iterations (1 = every iteration;
    # the optimization trajectory is bitwise unaffected).
    history_every: int = 1

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            min_iterations=self.timing_start_iteration + self.min_timing_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
            kernel_workers=self.kernel_workers,
            history_every=self.history_every,
        )


class DreamPlace4Baseline:
    """Timing-driven placement through momentum-guided net weighting."""

    def __init__(
        self,
        design: Design,
        config: Optional[DreamPlace4Config] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else DreamPlace4Config()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        # Bound to the flow-owned (span-backed) profiler after run(); see
        # DreamPlaceBaseline for the rationale.
        self.profiler: Optional[RuntimeProfiler] = None

    def run(self) -> BaselineResult:
        runner = FlowRunner(
            build_stages("dreamplace4", self.config), name="dreamplace4"
        )
        result = runner.run(
            self.design,
            constraints=self.constraints,
            seed=self.config.seed,
        )
        self.profiler = result.context.profiler
        return baseline_result_from_flow(result)
