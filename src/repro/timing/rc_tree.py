"""Explicit RC tree with Elmore delay evaluation.

The Elmore delay from the tree root (net driver) to a node ``t`` is

    delay(t) = sum over edges e on the root->t path of  R_e * C_down(e)

where ``C_down(e)`` is the total capacitance in the subtree hanging below
edge ``e`` (wire capacitance plus pin loads).  This is the delay model the
paper's quadratic distance loss is derived from (Sec. III-C, Eq. 7): with
wire resistance and capacitance both linear in length, the driver-to-sink
delay grows quadratically with the pin-to-pin distance.

The tree is evaluated from the topology's flat edge arrays: downstream
capacitance is accumulated level-by-level bottom-up and root-to-node delays
propagated level-by-level top-down, one vectorized pass per tree depth —
no per-edge Python objects.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.timing.steiner import NetTopology


class RCTree:
    """Distributed RC tree for one net.

    Wire segments use a pi-model: half the segment capacitance is lumped at
    each end.  Pin load capacitances are added at the pin nodes.
    """

    def __init__(
        self,
        topology: NetTopology,
        *,
        resistance_per_unit: float,
        capacitance_per_unit: float,
        pin_caps: Optional[Sequence[float]] = None,
    ) -> None:
        self.topology = topology
        self.resistance_per_unit = resistance_per_unit
        self.capacitance_per_unit = capacitance_per_unit
        num_nodes = topology.node_xy.shape[0]
        self.node_cap = np.zeros(num_nodes, dtype=np.float64)
        if pin_caps is not None:
            caps = np.asarray(pin_caps, dtype=np.float64)
            if caps.size != topology.num_pins:
                raise ValueError("pin_caps must have one entry per pin")
            self.node_cap[: topology.num_pins] += caps

        parent = topology.edge_parent
        child = topology.edge_child
        self._edge_resistance = resistance_per_unit * topology.edge_length
        edge_capacitance = capacitance_per_unit * topology.edge_length
        np.add.at(self.node_cap, parent, 0.5 * edge_capacitance)
        np.add.at(self.node_cap, child, 0.5 * edge_capacitance)

        self.root = topology.root
        self._node_depth = self._compute_depths(parent, child, num_nodes)
        self._downstream_cap: Optional[np.ndarray] = None
        self._node_delay: Optional[np.ndarray] = None

    def _compute_depths(
        self, parent: np.ndarray, child: np.ndarray, num_nodes: int
    ) -> np.ndarray:
        """Depth of each node below the root (-1 for unreachable nodes)."""
        depth = np.full(num_nodes, -1, dtype=np.int64)
        depth[self.root] = 0
        if parent.size == 0:
            return depth
        # Relax every edge whose parent depth is known until no edge fires;
        # a tree of depth d needs d passes, each a vectorized scan.
        pending = np.ones(parent.size, dtype=bool)
        while True:
            ready = pending & (depth[parent] >= 0)
            if not np.any(ready):
                break
            depth[child[ready]] = depth[parent[ready]] + 1
            pending &= ~ready
        return depth

    @property
    def total_capacitance(self) -> float:
        """Total capacitance the driver sees (wire + pin loads)."""
        return float(self.node_cap.sum())

    @property
    def total_wire_length(self) -> float:
        return self.topology.total_length

    def _compute_downstream(self) -> np.ndarray:
        """Capacitance of the subtree rooted at each node (including itself).

        Accumulated bottom-up: edges are processed one tree depth at a time
        (deepest children first), each level a single ``np.add.at`` over the
        level's edges.
        """
        if self._downstream_cap is not None:
            return self._downstream_cap
        downstream = self.node_cap.copy()
        parent = self.topology.edge_parent
        child = self.topology.edge_child
        if parent.size:
            child_depth = self._node_depth[child]
            for depth in range(int(child_depth.max()), 0, -1):
                level = child_depth == depth
                np.add.at(downstream, parent[level], downstream[child[level]])
        self._downstream_cap = downstream
        return downstream

    def _compute_node_delays(self) -> np.ndarray:
        """Elmore delay from the root to every node, one pass per tree depth.

        ``delay(child) = delay(parent) + R_edge * C_down(child)``, evaluated
        top-down so each depth is a single array operation.  Unreachable
        nodes keep NaN.
        """
        if self._node_delay is not None:
            return self._node_delay
        downstream = self._compute_downstream()
        delay = np.full(self.node_cap.size, np.nan, dtype=np.float64)
        delay[self.root] = 0.0
        parent = self.topology.edge_parent
        child = self.topology.edge_child
        if parent.size:
            child_depth = self._node_depth[child]
            for depth in range(1, int(child_depth.max()) + 1):
                level = child_depth == depth
                delay[child[level]] = (
                    delay[parent[level]]
                    + self._edge_resistance[level] * downstream[child[level]]
                )
        self._node_delay = delay
        return delay

    def elmore_delay(self, node: int) -> float:
        """Elmore delay from the root (driver) to ``node``."""
        delay = self._compute_node_delays()[node]
        if np.isnan(delay):
            raise ValueError(f"Node {node} is not reachable from the root")
        return float(delay)

    def elmore_delays_to_pins(self) -> np.ndarray:
        """Elmore delay from the root to every pin node (driver delay is 0)."""
        num_pins = self.topology.num_pins
        pin_delay = self._compute_node_delays()[:num_pins].copy()
        pin_delay[self.root] = 0.0
        bad = np.nonzero(np.isnan(pin_delay))[0]
        if bad.size:
            raise ValueError(f"Node {int(bad[0])} is not reachable from the root")
        return pin_delay
