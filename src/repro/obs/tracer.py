"""In-process hierarchical span tracer with counters and gauges.

The tracer is the single clock-owning component of the repo: every other
module times work either through :func:`clock` (a raw monotonic timestamp
for code that keeps legacy ``seconds`` accounting alive) or through
:func:`span` (a context manager that records a named, attributed interval
into the active tracer's ring buffer).  The contract-lint rule
``raw-timing`` enforces this — ``time.perf_counter()`` outside
``repro.obs`` / ``repro.utils.profiling`` is a finding.

Design constraints, in order:

* **Disabled means free.**  ``span(...)`` with no active tracer returns a
  shared no-op context manager without allocating; ``active_tracer()`` is
  a single module-global read.  The global-placement inner loop calls both
  every iteration, so the disabled path must not show up in profiles.
* **Enabled means cheap.**  One span is two ``perf_counter`` calls, one
  dict merge, and an append — no I/O, no string formatting.  The
  ≤3% traced-GP-iteration budget in ``benchmarks/bench_core.py`` gates
  this.
* **Never lossy about *that* it lost data.**  The ring buffer drops the
  newest spans once ``capacity`` is reached (so ancestors survive and the
  trace stays well-formed) but keeps exact aggregate metrics and a
  ``dropped`` count regardless.
* **No repro imports.**  ``repro.utils.profiling``, ``parallel.engine``
  and the layered packages (netlist/placement/timing/route) all import
  this module; it must stay stdlib-only to keep the import graph acyclic.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "DEFAULT_CAPACITY",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "clock",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing_enabled",
]

#: Monotonic float-seconds clock shared by the whole repo.  Code that keeps
#: legacy ``seconds`` fields (RuntimeProfiler, gradient_seconds, stage walls)
#: calls this instead of ``time.perf_counter`` so the raw-timing contract
#: rule has exactly one blessed call site.
clock = time.perf_counter

DEFAULT_CAPACITY = 262_144

_UNSET = object()


class SpanRecord:
    """One completed (or in-flight) span.

    ``start`` is an absolute :func:`clock` timestamp; ``dur`` is seconds
    (``-1.0`` while the span is still open).  ``track`` is either an
    integer thread ident (local spans) or a string lane name assigned by
    cross-process adoption (``"pool-worker-0"``, ``"batch-job-3"``).
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "dur", "track", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        dur: float,
        track: Union[int, str],
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.dur = dur
        self.track = track
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord(id={self.span_id}, parent={self.parent_id}, "
            f"name={self.name!r}, start={self.start:.6f}, dur={self.dur:.6f})"
        )


class _ActiveSpan:
    """Context manager handle returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_handle")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._handle: Optional[SpanRecord] = None

    def __enter__(self) -> SpanRecord:
        self._handle = self._tracer.begin(self._name, attrs=self._attrs)
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.end(self._handle)
        return False


class _NoopSpan:
    """Shared do-nothing context manager for the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Hierarchical span recorder with aggregate metrics.

    Thread-safe: spans opened on different threads nest independently
    (per-thread parent stacks) and finalization takes a lock, so batch
    jobs running on a thread executor can all record into the flow's
    tracer.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.epoch = clock()
        self.main_thread = threading.get_ident()
        # Owning process: a fork-started worker inherits the module global,
        # but a tracer can only ever be drained in the process that made it
        # (consumers compare pid and fall back to the shipping protocol).
        self.pid = os.getpid()
        self._records: List[SpanRecord] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._stacks = threading.local()
        self._span_seconds: Dict[str, float] = {}
        self._span_counts: Dict[str, int] = {}
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._listeners: List[Callable[[SpanRecord], None]] = []
        self.dropped = 0

    # ------------------------------------------------------------------ ids
    def new_id(self) -> int:
        """Allocate a fresh span id (used by cross-process adoption)."""
        return next(self._ids)

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._stacks, "items", None)
        if stack is None:
            stack = []
            self._stacks.items = stack
        return stack

    # ---------------------------------------------------------------- spans
    def begin(
        self,
        name: str,
        parent: Any = _UNSET,
        attrs: Optional[Dict[str, Any]] = None,
        **kwattrs: Any,
    ) -> SpanRecord:
        """Open a span; returns the handle to pass to :meth:`end`.

        ``parent`` defaults to the innermost open span on the calling
        thread; pass an explicit span id (or ``None`` for a root span) to
        override — batch jobs use this to hang worker-thread spans under
        the dispatching ``batch.run`` span.
        """
        stack = self._stack()
        if parent is _UNSET:
            parent_id = stack[-1].span_id if stack else None
        elif isinstance(parent, SpanRecord):
            parent_id = parent.span_id
        else:
            parent_id = parent
        if kwattrs:
            attrs = dict(attrs, **kwattrs) if attrs else kwattrs
        record = SpanRecord(
            next(self._ids),
            parent_id,
            name,
            clock(),
            -1.0,
            threading.get_ident(),
            attrs,
        )
        stack.append(record)
        return record

    def end(self, handle: Optional[SpanRecord]) -> float:
        """Close a span opened with :meth:`begin`; returns its duration."""
        if handle is None:
            return 0.0
        dur = clock() - handle.start
        handle.dur = dur
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # out-of-order end: drop it and everything above
            del stack[stack.index(handle):]
        self._finalize(handle)
        return dur

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Context manager recording one span around its body."""
        return _ActiveSpan(self, name, attrs or None)

    def record_complete(
        self,
        name: str,
        start: float,
        dur: float,
        parent: Any = _UNSET,
        track: Optional[Union[int, str]] = None,
        attrs: Optional[Dict[str, Any]] = None,
        **kwattrs: Any,
    ) -> SpanRecord:
        """Record an already-measured interval (start/dur in clock seconds).

        Hot loops that must keep their own ``clock()`` deltas alive for
        legacy accounting (``gradient_seconds``) use this so the same
        measurement feeds both views without a second pair of clock reads.
        """
        if parent is _UNSET:
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
        elif isinstance(parent, SpanRecord):
            parent_id = parent.span_id
        else:
            parent_id = parent
        if kwattrs:
            attrs = dict(attrs, **kwattrs) if attrs else kwattrs
        record = SpanRecord(
            next(self._ids),
            parent_id,
            name,
            start,
            dur,
            threading.get_ident() if track is None else track,
            attrs,
        )
        self._finalize(record)
        return record

    def _finalize(self, record: SpanRecord) -> None:
        name = record.name
        with self._lock:
            self._span_seconds[name] = self._span_seconds.get(name, 0.0) + record.dur
            self._span_counts[name] = self._span_counts.get(name, 0) + 1
            if len(self._records) < self.capacity:
                self._records.append(record)
            else:
                self.dropped += 1
        for listener in self._listeners:
            listener(record)

    def adopt(self, record: SpanRecord) -> None:
        """Append a pre-built record (cross-process adoption path)."""
        self._finalize(record)

    # -------------------------------------------------------------- metrics
    def counter(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def merge_metrics(
        self,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        dropped: int = 0,
    ) -> None:
        with self._lock:
            for name, value in (counters or {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in (gauges or {}).items():
                self._gauges[name] = float(value)
            self.dropped += int(dropped)

    def metrics(self) -> Dict[str, Any]:
        """Flat aggregate snapshot (merged into EvaluationReport/--profile)."""
        with self._lock:
            spans = {
                name: {
                    "seconds": self._span_seconds[name],
                    "count": self._span_counts[name],
                }
                for name in sorted(self._span_seconds)
            }
            return {
                "spans": spans,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "events": len(self._records),
                "dropped": self.dropped,
            }

    # ------------------------------------------------------------ listeners
    def add_listener(self, listener: Callable[[SpanRecord], None]) -> None:
        """Streaming seam: ``listener`` is called with each completed span.

        This is the hook the future placement-as-a-service progress feed
        attaches to; listeners must be fast and must not raise.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[SpanRecord], None]) -> None:
        self._listeners.remove(listener)

    # ---------------------------------------------------------------- views
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


# ---------------------------------------------------------------------------
# Module-level active tracer
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def start_tracing(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install a fresh process-wide tracer; raises if one is already active."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "tracing already active; call stop_tracing() before starting again"
        )
    _ACTIVE = Tracer(capacity=capacity)
    return _ACTIVE


def stop_tracing() -> Optional[Tracer]:
    """Uninstall and return the active tracer (``None`` if none was active).

    The returned tracer keeps its records, so exporters run after this.
    """
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    return tracer


def span(name: str, **attrs: Any) -> Union[_ActiveSpan, _NoopSpan]:
    """Record a span around the ``with`` body on the active tracer.

    With tracing disabled this returns a shared no-op context manager; the
    call costs one global read plus the (empty-most-of-the-time) kwargs
    dict, which is what lets hot loops leave ``span(...)`` calls inline.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP_SPAN
    return _ActiveSpan(tracer, name, attrs or None)
