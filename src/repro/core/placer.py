"""The Efficient-TDP flow (Fig. 1 of the paper) as a pipeline preset.

The flow wires together the substrates through the composable pipeline in
:mod:`repro.flow`:

1. run DREAMPlace-style nonlinear global placement (wirelength + density);
2. once the cell distribution has stabilized (``timing_start_iteration``),
   run a path-level timing analysis every ``m`` iterations: STA, critical
   path extraction with ``report_timing_endpoint(n, 1)`` over all failing
   endpoints, and the Eq. 9 pin-pair weight update;
3. the pin-to-pin attraction term (quadratic distance loss, Eq. 8/10) joins
   the objective with multiplier ``beta`` and pulls critical pin pairs
   together during the remaining iterations;
4. Abacus legalization, then evaluation with the shared evaluator.

:class:`EfficientTDPlacer` is a thin wrapper over the ``efficient_tdp``
preset (``repro.flow.presets.build_flow("efficient_tdp", ...)``); the stage
implementations live in :mod:`repro.flow.stages`.

Hyper-parameter defaults follow Sec. IV: ``beta = 2.5e-5`` (with an optional
automatic rescaling because the absolute value is engine-specific), ``m =
15``, ``w0 = 10``, ``w1 = 0.2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.path_extraction import ExtractionConfig
from repro.evaluation.evaluator import EvaluationReport
from repro.netlist.design import Design
from repro.placement.global_placer import (
    PlacementConfig,
    PlacementHistory,
    PlacementResult,
)
from repro.timing.constraints import TimingConstraints
from repro.timing.report import PathExtractionStats
from repro.utils.logging import get_logger
from repro.utils.profiling import RuntimeProfiler

logger = get_logger("core.placer")


@dataclass
class EfficientTDPConfig:
    """Configuration of the Efficient-TDP flow."""

    # Placement engine schedule.
    max_iterations: int = 450
    timing_start_iteration: int = 150
    min_timing_iterations: int = 120
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    # Paper hyper-parameters (Sec. IV).
    beta: float = 2.5e-5
    beta_mode: str = "auto"        # "auto": rescale beta against the WL gradient
    beta_auto_ratio: float = 4.0   # per-pair attraction force vs per-cell WL force
    timing_update_interval: int = 15   # m
    w0: float = 10.0
    w1: float = 0.2
    loss: str = "quadratic"
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    # STA engine mode between timing iterations (exact with tolerance 0).
    incremental_sta: bool = False
    sta_move_tolerance: float = 0.0
    # MCMM analysis corners: None (single-corner), a preset string such as
    # "fast,typ,slow", or a sequence of Corner objects.  Timing feedback
    # then optimizes against the merged (worst-over-corners) slack.
    corners: Optional[object] = None
    # Post-processing.
    legalize: bool = True
    verbose: bool = False
    # Kernel-pool workers for the density / congestion / STA hot paths
    # (0 = serial; see repro.parallel for the bit-exactness guarantee).
    kernel_workers: int = 0
    # Record placement history every N iterations (1 = every iteration;
    # the optimization trajectory is bitwise unaffected).
    history_every: int = 1

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            min_iterations=self.timing_start_iteration + self.min_timing_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
            kernel_workers=self.kernel_workers,
            history_every=self.history_every,
        )


@dataclass
class TDPResult:
    """Everything a flow run produces."""

    x: np.ndarray
    y: np.ndarray
    evaluation: EvaluationReport
    placement: PlacementResult
    history: PlacementHistory
    extraction_stats: List[PathExtractionStats]
    profiler: RuntimeProfiler
    runtime_seconds: float
    num_pin_pairs: int

    def summary(self) -> dict:
        return {
            "design": self.evaluation.design_name,
            "hpwl": self.evaluation.hpwl,
            "tns": self.evaluation.tns,
            "wns": self.evaluation.wns,
            "runtime_sec": round(self.runtime_seconds, 2),
            "iterations": self.placement.iterations,
            "pin_pairs": self.num_pin_pairs,
        }


class EfficientTDPlacer:
    """Timing-driven global placement by efficient critical path extraction.

    A thin preset over the flow pipeline: the constructor expands the config
    into the ``efficient_tdp`` stage list (timing-weight -> global-place ->
    legalize -> evaluate) and :meth:`run` executes it with a
    :class:`repro.flow.runner.FlowRunner`.
    """

    def __init__(
        self,
        design: Design,
        config: Optional[EfficientTDPConfig] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
    ) -> None:
        # Imported here: repro.core loads before repro.flow in the package
        # import order, so the flow modules cannot be module-level imports.
        from repro.flow.presets import build_stages
        from repro.flow.runner import FlowRunner
        from repro.flow.stages import TimingWeightStage

        self.design = design
        self.config = config if config is not None else EfficientTDPConfig()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.profiler = RuntimeProfiler()
        self.stages = build_stages("efficient_tdp", self.config)
        self.runner = FlowRunner(self.stages, name="efficient_tdp")
        self.strategy = next(
            stage.strategy for stage in self.stages if isinstance(stage, TimingWeightStage)
        )

    # ------------------------------------------------------------------
    def run(self) -> TDPResult:
        """Run the full flow and return the evaluated placement."""
        result = self.runner.run(
            self.design,
            constraints=self.constraints,
            seed=self.config.seed,
            profiler=self.profiler,
        )
        ctx = result.context
        return TDPResult(
            x=result.x,
            y=result.y,
            evaluation=ctx.evaluation,
            placement=ctx.placement,
            history=ctx.history,
            extraction_stats=list(ctx.extraction_stats),
            profiler=self.profiler,
            runtime_seconds=result.runtime_seconds,
            num_pin_pairs=len(ctx.pin_pairs) if ctx.pin_pairs is not None else 0,
        )
