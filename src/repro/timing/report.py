"""Critical path reporting.

Two extraction commands are provided, mirroring Sec. III-B of the paper:

* :func:`report_timing` — OpenTimer-style ``report_timing(n)``: take the ``n``
  worst endpoints, enumerate the ``n`` worst paths for each (``n^2`` paths
  analyzed), and return the overall ``n`` worst.  Accurate for tiny ``n`` but
  quadratic, and the selected paths concentrate on a few endpoints.
* :func:`report_timing_endpoint` — the paper's
  ``report_timing_endpoint(n, k)``: take the ``n`` worst endpoints and return
  the ``k`` worst paths *per endpoint* (``n*k`` paths analyzed), guaranteeing
  every reported endpoint is covered, which is what the TNS metric needs.

Both return :class:`TimingPath` objects plus a :class:`PathExtractionStats`
record with the coverage statistics reported in Table I (number of paths,
unique endpoints, unique pin pairs, wall-clock time).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs import clock
from repro.timing.graph import ArcKind, TimingGraph
from repro.timing.sta import STAEngine, STAResult

_NEG_INF = -1.0e30


@dataclass
class TimingPath:
    """One timing path from a startpoint to an endpoint."""

    pins: List[int]
    arcs: List[int]
    arrival: float
    required: float
    endpoint: int
    startpoint: int

    @property
    def slack(self) -> float:
        return self.required - self.arrival

    @property
    def num_stages(self) -> int:
        return len(self.arcs)

    def pin_pairs(self, graph: TimingGraph) -> List[Tuple[int, int]]:
        """Driver/sink pin pairs of the net arcs along the path.

        Cell-internal arcs are skipped: the distance between two pins of the
        same instance is fixed by the cell layout, so only net arcs give the
        placer a controllable pin-to-pin distance.
        """
        pairs: List[Tuple[int, int]] = []
        for arc_index in self.arcs:
            if graph.arc_kind[arc_index] == int(ArcKind.NET):
                pairs.append((int(graph.arc_from[arc_index]), int(graph.arc_to[arc_index])))
        return pairs

    def describe(self, graph: TimingGraph) -> str:
        """Human-readable one-line description."""
        names = [graph.pin_name(p) for p in self.pins]
        return f"slack={self.slack:.1f} arrival={self.arrival:.1f}: " + " -> ".join(names)


@dataclass
class PathExtractionStats:
    """Coverage statistics of one extraction run (Table I columns)."""

    command: str
    complexity: str
    num_paths: int
    num_endpoints: int
    num_pin_pairs: int
    elapsed_seconds: float
    num_paths_analyzed: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "command": self.command,
            "complexity": self.complexity,
            "num_paths": self.num_paths,
            "num_endpoints": self.num_endpoints,
            "num_pin_pairs": self.num_pin_pairs,
            "time_sec": round(self.elapsed_seconds, 4),
        }


def _worst_endpoints(result: STAResult, n: int, *, failing_only: bool = False) -> np.ndarray:
    """Pin indices of the ``n`` worst endpoints by slack (worst first)."""
    slack = result.endpoint_slack
    pins = result.endpoint_pins
    if failing_only:
        mask = slack < 0
        slack = slack[mask]
        pins = pins[mask]
    if pins.size == 0 or n <= 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(slack, kind="stable")
    return pins[order[: min(n, pins.size)]]


def _worst_paths_to_endpoint(
    engine: STAEngine,
    result: STAResult,
    endpoint: int,
    k: int,
) -> List[TimingPath]:
    """Enumerate the ``k`` worst (largest-arrival) paths ending at ``endpoint``.

    Best-first backward expansion: a partial path is the suffix from some pin
    ``u`` to the endpoint; its priority is ``arrival[u] + suffix_delay``, an
    upper bound on any completion's arrival, so completed paths pop off the
    heap in non-increasing arrival order (the classic k-worst-paths search
    used by parallel timers such as OpenTimer).
    """
    graph = engine.graph
    arrival = result.arrival
    arc_delay = result.arc_delay
    required_at_endpoint = float(
        result.required[endpoint]
        if result.required[endpoint] < 1.0e29
        else engine.constraints.clock_period
    )

    counter = itertools.count()
    # Heap entries: (-bound, tiebreak, current_pin, suffix_delay, arcs_reversed)
    heap: List[Tuple[float, int, int, float, Tuple[int, ...]]] = []
    heapq.heappush(heap, (-float(arrival[endpoint]), next(counter), endpoint, 0.0, ()))
    paths: List[TimingPath] = []
    # Guard against pathological designs: never expand more than this many
    # partial paths per endpoint.
    max_expansions = max(10_000, 200 * k)
    expansions = 0

    while heap and len(paths) < k and expansions < max_expansions:
        neg_bound, _, pin, suffix, arcs_rev = heapq.heappop(heap)
        expansions += 1
        fanin = graph.fanin_of(pin)
        if fanin.size == 0:
            # Completed a full path: pin is a startpoint (or floating input).
            path_arrival = float(arrival[pin]) + suffix
            arc_list = list(reversed(arcs_rev))
            pin_list = [pin]
            for arc_index in arc_list:
                pin_list.append(int(graph.arc_to[arc_index]))
            paths.append(
                TimingPath(
                    pins=pin_list,
                    arcs=arc_list,
                    arrival=path_arrival,
                    required=required_at_endpoint,
                    endpoint=endpoint,
                    startpoint=pin,
                )
            )
            continue
        for arc_index in fanin:
            arc_index = int(arc_index)
            source = int(graph.arc_from[arc_index])
            if arrival[source] <= _NEG_INF / 2:
                continue
            new_suffix = suffix + float(arc_delay[arc_index])
            bound = float(arrival[source]) + new_suffix
            heapq.heappush(
                heap,
                (-bound, next(counter), source, new_suffix, arcs_rev + (arc_index,)),
            )
    return paths


def report_timing_endpoint(
    engine: STAEngine,
    n: int,
    k: int = 1,
    *,
    result: Optional[STAResult] = None,
    failing_only: bool = False,
) -> Tuple[List[TimingPath], PathExtractionStats]:
    """Paper's extraction: ``k`` worst paths for each of the ``n`` worst endpoints."""
    if result is None:
        if engine.last_result is None:
            result = engine.update_timing()
        else:
            result = engine.last_result
    start = clock()
    endpoints = _worst_endpoints(result, n, failing_only=failing_only)
    paths: List[TimingPath] = []
    for endpoint in endpoints:
        paths.extend(_worst_paths_to_endpoint(engine, result, int(endpoint), k))
    elapsed = clock() - start
    stats = _build_stats(
        engine.graph,
        paths,
        command=f"report_timing_endpoint({n},{k})",
        complexity="O(n*k)",
        elapsed=elapsed,
        analyzed=len(paths),
    )
    return paths, stats


def report_timing(
    engine: STAEngine,
    n: int,
    *,
    result: Optional[STAResult] = None,
    failing_only: bool = False,
    max_paths_per_endpoint: Optional[int] = None,
) -> Tuple[List[TimingPath], PathExtractionStats]:
    """OpenTimer-style extraction: ``n`` worst paths overall.

    Follows the semantics described in the paper: the ``n`` worst endpoints
    are identified, ``n`` worst paths are enumerated for each (``n^2``
    analyzed), and the overall ``n`` worst paths are returned.
    ``max_paths_per_endpoint`` caps the per-endpoint enumeration for runtime
    experiments without changing which paths are ultimately reported for
    modest ``n``.
    """
    if result is None:
        if engine.last_result is None:
            result = engine.update_timing()
        else:
            result = engine.last_result
    start = clock()
    endpoints = _worst_endpoints(result, n, failing_only=failing_only)
    per_endpoint = n if max_paths_per_endpoint is None else min(n, max_paths_per_endpoint)
    all_paths: List[TimingPath] = []
    for endpoint in endpoints:
        all_paths.extend(_worst_paths_to_endpoint(engine, result, int(endpoint), per_endpoint))
    analyzed = len(all_paths)
    all_paths.sort(key=lambda p: p.slack)
    selected = all_paths[: min(n, len(all_paths))]
    elapsed = clock() - start
    stats = _build_stats(
        engine.graph,
        selected,
        command=f"report_timing({n})",
        complexity="O(n^2)",
        elapsed=elapsed,
        analyzed=analyzed,
    )
    return selected, stats


def _build_stats(
    graph: TimingGraph,
    paths: Sequence[TimingPath],
    *,
    command: str,
    complexity: str,
    elapsed: float,
    analyzed: int,
) -> PathExtractionStats:
    endpoints: Set[int] = set()
    pin_pairs: Set[Tuple[int, int]] = set()
    for path in paths:
        endpoints.add(path.endpoint)
        pin_pairs.update(path.pin_pairs(graph))
    return PathExtractionStats(
        command=command,
        complexity=complexity,
        num_paths=len(paths),
        num_endpoints=len(endpoints),
        num_pin_pairs=len(pin_pairs),
        elapsed_seconds=elapsed,
        num_paths_analyzed=analyzed,
    )
