"""Simple detailed placement: within-row adjacent-cell swapping.

After legalization, neighbouring cells in the same row are swapped whenever
the swap reduces total HPWL of the nets touching them.  This is a small
local-search refinement comparable in spirit (not in strength) to the
independent-set matching used by industrial flows; the paper's evaluation is
about global placement, so detailed placement is deliberately lightweight and
optional.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.core import as_core
from repro.placement.wirelength import hpwl_per_net


class DetailedPlacer:
    """Greedy adjacent-swap refinement on a legalized placement."""

    def __init__(self, design, *, max_passes: int = 2) -> None:
        self.core = as_core(design)
        self.max_passes = max_passes

    def refine(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Return refined positions and the number of accepted swaps."""
        arrays = self.core
        if x is None or y is None:
            x, y = arrays.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()

        # Nets touching each instance, for incremental HPWL evaluation.
        nets_of_instance: Dict[int, List[int]] = defaultdict(list)
        for pin_idx in range(arrays.num_pins):
            inst = int(arrays.pin_instance[pin_idx])
            net = int(arrays.pin_net[pin_idx])
            if net >= 0:
                nets_of_instance[inst].append(net)

        movable = set(int(i) for i in arrays.movable_index)
        accepted = 0
        for _ in range(self.max_passes):
            improved_this_pass = 0
            # Group movable cells by row (y coordinate).
            rows: Dict[float, List[int]] = defaultdict(list)
            for inst in movable:
                rows[float(y[inst])].append(inst)
            for row_cells in rows.values():
                row_cells.sort(key=lambda i: x[i])
                for left, right in zip(row_cells, row_cells[1:]):
                    nets = list(set(nets_of_instance[left] + nets_of_instance[right]))
                    if not nets:
                        continue
                    before = self._nets_hpwl(nets, x, y)
                    new_x = x.copy()
                    # Swap: right cell takes left's slot, left goes after it.
                    new_x[right] = x[left]
                    new_x[left] = x[left] + arrays.inst_width[right]
                    after = self._nets_hpwl(nets, new_x, y)
                    if after + 1e-9 < before:
                        x = new_x
                        accepted += 1
                        improved_this_pass += 1
            if improved_this_pass == 0:
                break
        return x, y, accepted

    def _nets_hpwl(self, nets: List[int], x: np.ndarray, y: np.ndarray) -> float:
        per_net = hpwl_per_net(self.core, x, y)
        return float(per_net[nets].sum())

    def apply(self, x: np.ndarray, y: np.ndarray) -> None:
        self.core.set_positions(x, y)
