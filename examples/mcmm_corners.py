#!/usr/bin/env python3
"""Multi-corner/multi-mode (MCMM) timing-driven placement in ~40 lines.

Runs the paper's Efficient-TDP flow on one sb_mini design three ways —
single-corner, and 3-corner MCMM ("fast,typ,slow") with timing feedback
optimizing the merged worst-over-corner slack — then prints the per-corner
WNS/TNS breakdown of each result, evaluated against the full 3-corner set.

The comparison shows the point of MCMM-aware placement: the single-corner
flow only sees the typical corner, so the slow corner it never analyzed is
usually worse than what the merged-slack flow achieves.

Run:  python examples/mcmm_corners.py
      (or, with the package installed:
       repro run sb_mini_18 --corners fast,typ,slow)
"""

from repro import build_flow, load_benchmark
from repro.evaluation.evaluator import evaluate_placement
from repro.timing import MultiCornerSTA, resolve_corners

DESIGN = "sb_mini_18"
CORNERS = "fast,typ,slow"


def main() -> None:
    corners = resolve_corners(CORNERS)

    # Single-corner flow: timing feedback sees only the typical corner.
    single = build_flow("efficient_tdp", seed=1).run(load_benchmark(DESIGN))

    # MCMM flow: one stacked STA per timing iteration, merged-slack feedback.
    design = load_benchmark(DESIGN)
    mcmm = build_flow("efficient_tdp", corners=CORNERS, seed=1).run(design)

    # Score both placements against the same 3-corner analysis.
    print(f"design: {DESIGN}  corners: {', '.join(c.name for c in corners)}")
    print(f"{'flow':<16}{'corner':<8}{'wns':>10}{'tns':>12}")
    for label, result in (("single-corner", single), ("mcmm", mcmm)):
        report = evaluate_placement(
            result.context.design, result.x, result.y, corners=corners
        )
        for corner_name, row in report.per_corner.items():
            print(
                f"{label:<16}{corner_name:<8}{row['wns']:>10.1f}{row['tns']:>12.1f}"
            )
        print(f"{label:<16}{'merged':<8}{report.wns:>10.1f}{report.tns:>12.1f}")

    # The stacked engine is also usable directly, outside any flow.
    engine = MultiCornerSTA(design, corners)
    stacked = engine.update_timing(mcmm.x, mcmm.y)
    print(f"\nstacked slack array: {stacked.slack.shape} "
          f"(corners x pins), merged wns {stacked.wns:.1f}")


if __name__ == "__main__":
    main()
