"""Fixture: worker kernels violating every kernel-purity clause."""

import time

import numpy as np


def register_kernel(name):
    def wrap(fn):
        return fn

    return wrap


@register_kernel("bad_scatter")
def bad_scatter(arrays, start, end):
    # Order-sensitive float fold inside a worker.
    np.add.at(arrays["grid"], arrays["idx"][start:end], arrays["w"][start:end])
    return None


@register_kernel("bad_reduceat")
def bad_reduceat(arrays, start, end):
    return np.add.reduceat(arrays["w"][start:end], arrays["seg"][start:end])


@register_kernel("bad_inplace")
def bad_inplace(arrays, start, end):
    arrays["grid"][arrays["idx"][start:end]] += arrays["w"][start:end]
    return None


@register_kernel("bad_rng")
def bad_rng(arrays, start, end):
    rng = np.random.default_rng(0)
    return rng.normal(size=end - start)


@register_kernel("bad_clock")
def bad_clock(arrays, start, end):
    return time.perf_counter()


@register_kernel("bad_io")
def bad_io(arrays, start, end):
    print("worker side effect")
    return None
