"""Frozen, array-only design snapshots for process-scale batching.

A :class:`CompiledDesign` is a picklable snapshot of a finalized
:class:`repro.netlist.design.Design`: flat NumPy arrays plus name tables and
the (small) cell library — no ``Instance``/``PinRef``/``Net`` object graph,
no circular references.  It serves two jobs:

* **cheap shipping** — pickling a snapshot is an order of magnitude smaller
  and faster than pickling the full object graph, so the batch runner can
  build a design once in the parent and fan it out to process workers;
* **zero-copy sharing** — :class:`SharedDesignPack` places the snapshot's
  read-only arrays in :mod:`multiprocessing.shared_memory`, so workers on
  the same host attach instead of receiving a copy.

Reconstruction (:meth:`CompiledDesign.to_design`) replays the normal design
construction API in the recorded order, so the rebuilt design is
index-for-index and bit-for-bit identical to the original: same instance,
pin, and net indices, same CSR pin ordering, same positions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclasses_fields, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.design import (
    PORT_INPUT_CELL_NAME,
    Design,
)
from repro.netlist.library import CellType, Library, PinDirection

# Snapshot attributes holding NumPy arrays (the shared-memory payload).
_ARRAY_FIELDS: Tuple[str, ...] = (
    "x",
    "y",
    "inst_cell_id",
    "inst_fixed",
    "inst_is_port",
    "inst_pin_offsets",
    "net_pin_offsets",
    "net_pin_index",
    "net_weight",
)


def _rebuild_compiled(blob: bytes) -> "CompiledDesign":
    """Inverse of :meth:`CompiledDesign.__reduce__`."""
    import pickle
    import zlib

    state = pickle.loads(zlib.decompress(blob))
    for name in _ARRAY_FIELDS:
        arr = state[name]
        if arr is not None and arr.dtype == np.int32:
            state[name] = arr.astype(np.int64)
    return CompiledDesign(**state)


@dataclass(frozen=True, eq=False)
class CompiledDesign:
    """Array-only snapshot of a finalized design (picklable, no object graph)."""

    name: str
    die: Tuple[float, float, float, float]
    row_height: float
    site_width: float
    clock_period: Optional[float]
    clock_name: str
    clock_port: Optional[str]
    input_delays: Dict[str, float]
    output_delays: Dict[str, float]
    # MCMM corner specs (tuple of repro.timing Corner objects or None);
    # carried so batch workers rebuild the same analysis setup.
    corners: Optional[Tuple[object, ...]]
    library: Library
    cell_types: Tuple[CellType, ...]
    instance_names: Tuple[str, ...]
    net_names: Tuple[str, ...]
    orientations: Optional[Tuple[str, ...]]
    x: np.ndarray
    y: np.ndarray
    inst_cell_id: np.ndarray
    inst_fixed: np.ndarray
    inst_is_port: np.ndarray
    inst_pin_offsets: np.ndarray
    net_pin_offsets: np.ndarray
    net_pin_index: np.ndarray
    net_weight: np.ndarray

    def __reduce__(self):
        """Compact wire format: index arrays downcast to int32, state deflated.

        The in-memory layout is untouched (int64 indices, plain tuples); only
        the pickle payload shrinks — connectivity and name tables are highly
        repetitive, so this is where the >=10x size win over pickling the
        object graph comes from.
        """
        import pickle
        import zlib

        state = {
            f.name: getattr(self, f.name) for f in dataclasses_fields(type(self))
        }
        for name in _ARRAY_FIELDS:
            arr = state[name]
            if (
                arr is not None
                and arr.dtype == np.int64
                and (arr.size == 0 or (arr.min() >= np.iinfo(np.int32).min and arr.max() <= np.iinfo(np.int32).max))
            ):
                state[name] = arr.astype(np.int32)
        blob = zlib.compress(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL), 6)
        return (_rebuild_compiled, (blob,))

    @property
    def num_instances(self) -> int:
        return len(self.instance_names)

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_pins(self) -> int:
        return int(self.inst_pin_offsets[-1])

    def array_nbytes(self) -> int:
        """Total byte size of the array payload."""
        return sum(getattr(self, name).nbytes for name in _ARRAY_FIELDS)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def to_design(self) -> Design:
        """Rebuild a finalized :class:`Design` identical to the compiled one."""
        design = Design(
            self.name,
            die=self.die,
            library=self.library,
            row_height=self.row_height,
            site_width=self.site_width,
        )
        orientations = self.orientations
        x = self.x
        y = self.y
        fixed = self.inst_fixed
        is_port = self.inst_is_port
        cell_ids = self.inst_cell_id
        for i, inst_name in enumerate(self.instance_names):
            cell = self.cell_types[cell_ids[i]]
            if is_port[i]:
                direction = (
                    PinDirection.INPUT
                    if cell.name == PORT_INPUT_CELL_NAME
                    else PinDirection.OUTPUT
                )
                design.add_port(inst_name, direction, x=x[i], y=y[i])
            else:
                design.add_instance(
                    inst_name,
                    cell,
                    x=x[i],
                    y=y[i],
                    fixed=bool(fixed[i]),
                    orientation=orientations[i] if orientations is not None else "N",
                )

        net_objs = [design.add_net(net_name) for net_name in self.net_names]

        # Pin index -> (owner instance, local pin name): pins of instance i
        # are the contiguous block inst_pin_offsets[i]:inst_pin_offsets[i+1]
        # in the master's pin-declaration order.
        pin_owner = (
            np.searchsorted(self.inst_pin_offsets, self.net_pin_index, side="right") - 1
        )
        pin_names_by_cell: List[List[str]] = [
            list(cell.pins.keys()) for cell in self.cell_types
        ]
        instances = design.instances
        offsets = self.net_pin_offsets
        for e, net in enumerate(net_objs):
            for k in range(int(offsets[e]), int(offsets[e + 1])):
                pin_index = int(self.net_pin_index[k])
                owner = int(pin_owner[k])
                local = pin_index - int(self.inst_pin_offsets[owner])
                pin_name = pin_names_by_cell[int(cell_ids[owner])][local]
                design.connect(net, instances[owner], pin_name)

        design.clock_period = self.clock_period
        design.clock_name = self.clock_name
        design.clock_port = self.clock_port
        design.input_delays = dict(self.input_delays)
        design.output_delays = dict(self.output_delays)
        design.corners = self.corners
        design.finalize()

        core = design.core
        if core.num_pins != self.num_pins or not np.array_equal(
            core.net_pin_index, self.net_pin_index
        ):
            raise RuntimeError(
                f"CompiledDesign {self.name}: reconstruction produced a different "
                "pin/net layout than the snapshot records"
            )
        core.net_weight[:] = self.net_weight
        return design


def compile_design(design: Design) -> CompiledDesign:
    """Snapshot a finalized design into a :class:`CompiledDesign`."""
    core = design.core
    corners = design.corners
    if corners is not None:
        # Normalize spec strings ("fast,typ,slow") into Corner tuples so the
        # snapshot is self-contained (lazy import: netlist must not depend on
        # timing at module load).
        from repro.timing.mcmm import resolve_corners

        corners = resolve_corners(corners)
    orientations: Optional[Tuple[str, ...]] = tuple(
        inst.orientation for inst in design.instances
    )
    if all(o == "N" for o in orientations):
        orientations = None  # the common case costs nothing in the pickle
    die = design.die
    return CompiledDesign(
        name=design.name,
        die=(die.xl, die.yl, die.xh, die.yh),
        row_height=design.row_height,
        site_width=design.site_width,
        clock_period=design.clock_period,
        clock_name=design.clock_name,
        clock_port=design.clock_port,
        input_delays=dict(design.input_delays),
        output_delays=dict(design.output_delays),
        corners=corners,
        library=design.library,
        cell_types=core.cell_types,
        instance_names=tuple(inst.name for inst in design.instances),
        net_names=tuple(net.name for net in design.nets),
        orientations=orientations,
        x=core.x.copy(),
        y=core.y.copy(),
        inst_cell_id=core.inst_cell_id,
        inst_fixed=core.inst_fixed,
        inst_is_port=core.inst_is_port,
        inst_pin_offsets=core.inst_pin_offsets,
        net_pin_offsets=core.net_pin_offsets,
        net_pin_index=core.net_pin_index,
        net_weight=core.net_weight.copy(),
    )


# ----------------------------------------------------------------------
# Shared-memory transport (opt-in)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ArraySpec:
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedDesignHandle:
    """Small picklable ticket a worker uses to attach a shared snapshot."""

    shm_name: str
    specs: Dict[str, _ArraySpec]
    payload: CompiledDesign  # snapshot with the array fields stripped to None

    def load(self) -> "LoadedSharedDesign":
        """Attach the shared block and materialize a zero-copy snapshot.

        The returned object must be kept alive (and then closed) while the
        snapshot's arrays are in use — they are views into the shared block.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.shm_name)
        try:
            arrays: Dict[str, np.ndarray] = {}
            for name, spec in self.specs.items():
                count = int(np.prod(spec.shape)) if spec.shape else 1
                arr = np.frombuffer(
                    shm.buf, dtype=np.dtype(spec.dtype), count=count, offset=spec.offset
                ).reshape(spec.shape)
                arr.flags.writeable = False
                arrays[name] = arr
            return LoadedSharedDesign(replace(self.payload, **arrays), shm)
        except BaseException:
            # Don't leave the worker-side mapping open on a failed attach.
            # Drop every numpy view first: close() refuses while buffer
            # exports are alive.
            arr = None
            arrays = None  # type: ignore[assignment]
            shm.close()
            raise


class LoadedSharedDesign:
    """A shared snapshot attached in this process; close after use."""

    def __init__(self, compiled: CompiledDesign, shm) -> None:
        self.compiled = compiled
        self._shm = shm

    def close(self) -> None:
        if self._shm is not None:
            # Drop the numpy views before closing the mapping (required on
            # CPython: memoryview exports keep the buffer pinned).
            self.compiled = None  # type: ignore[assignment]
            self._shm.close()
            self._shm = None

    def __enter__(self) -> CompiledDesign:
        return self.compiled

    def __exit__(self, *exc) -> None:
        self.close()


class SharedDesignPack:
    """Parent-side owner of one snapshot's shared-memory block.

    Usage::

        with SharedDesignPack(compile_design(design)) as pack:
            pool.submit(worker, pack.handle)   # handle pickles in O(names)
            ...
        # block is closed + unlinked on exit, even if a worker raised

    ``close()`` (or leaving the ``with`` block) both closes the mapping and
    unlinks the segment, so no ``/dev/shm`` entry outlives the pack — the
    batch runner keeps every pack it creates inside an ``ExitStack`` for the
    same reason.  Construction is exception-safe: if copying the arrays into
    the fresh segment fails, the segment is unlinked before the error
    propagates.
    """

    def __init__(self, compiled: CompiledDesign) -> None:
        from multiprocessing import shared_memory

        specs: Dict[str, _ArraySpec] = {}
        offset = 0
        for name in _ARRAY_FIELDS:
            arr = getattr(compiled, name)
            # Align each array to 8 bytes so typed views stay aligned.
            offset = (offset + 7) & ~7
            specs[name] = _ArraySpec(arr.dtype.str, tuple(arr.shape), offset)
            offset += arr.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            for name in _ARRAY_FIELDS:
                arr = getattr(compiled, name)
                spec = specs[name]
                dest = np.frombuffer(
                    self._shm.buf, dtype=arr.dtype, count=arr.size, offset=spec.offset
                ).reshape(arr.shape)
                dest[...] = arr
            self.handle = SharedDesignHandle(
                shm_name=self._shm.name,
                specs=specs,
                payload=replace(compiled, **{name: None for name in _ARRAY_FIELDS}),
            )
        except BaseException:
            # Never leak a half-initialized segment: nobody else holds the
            # name yet, so close + unlink here is the only cleanup chance.
            self.close()
            raise

    def close(self) -> None:
        """Release the shared block (close + unlink). Idempotent."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None

    def __enter__(self) -> "SharedDesignPack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
