"""Nesterov accelerated gradient optimizer with Barzilai-Borwein step sizes.

This is the optimizer used by ePlace/DREAMPlace for nonlinear global
placement: Nesterov's accelerated gradient method where the step size is
estimated each iteration from the displacement/gradient-change inner products
(the BB method), clamped to a sane range derived from the die dimensions.
The optimizer is agnostic of the objective; the placer supplies a gradient
callback and applies its own preconditioning before calling :meth:`step`.

Allocation discipline (PR 7): the optimizer recycles its internal
reference/previous-iterate buffers through a small per-axis pool and keeps
owned copies of the previous gradient, so a steady-state iteration allocates
only the two ``new_major`` arrays — those escape to the placer (history,
feedbacks, the final :class:`PlacementResult`) and must stay fresh.  The
gradient callback may return buffers it reuses between calls (the placer's
iteration arena does exactly that); the owned ``prev_grad`` copies make that
safe.  All replacements are bitwise-neutral: ``np.copyto`` + in-place
arithmetic produce the same bits as the allocating expressions they
replaced, and the BB inner products run over one contiguous ``2n`` buffer
exactly like the legacy ``np.concatenate`` form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

GradientFn = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]


@dataclass
class OptimizerState:
    """Internal state carried across iterations."""

    major_x: np.ndarray
    major_y: np.ndarray
    reference_x: np.ndarray
    reference_y: np.ndarray
    prev_grad_x: Optional[np.ndarray] = None
    prev_grad_y: Optional[np.ndarray] = None
    prev_x: Optional[np.ndarray] = None
    prev_y: Optional[np.ndarray] = None
    momentum: float = 1.0


class NesterovOptimizer:
    """Nesterov's method with BB step estimation for placement coordinates."""

    def __init__(
        self,
        x0: np.ndarray,
        y0: np.ndarray,
        *,
        movable_mask: np.ndarray,
        min_step: float,
        max_step: float,
        initial_step: Optional[float] = None,
    ) -> None:
        if min_step <= 0 or max_step <= 0 or max_step < min_step:
            raise ValueError("Step bounds must satisfy 0 < min_step <= max_step")
        self.movable_mask = movable_mask
        self.min_step = float(min_step)
        self.max_step = float(max_step)
        self.step = float(initial_step) if initial_step is not None else float(
            np.sqrt(min_step * max_step)
        )
        self.state = OptimizerState(
            major_x=x0.copy(),
            major_y=y0.copy(),
            reference_x=x0.copy(),
            reference_y=y0.copy(),
        )
        self.iteration = 0

        # Recycled internal buffers: reference/prev iterates rotate through
        # these free lists; prev-gradient copies and the BB scratch are owned.
        n = x0.size
        self._ref_pool_x: List[np.ndarray] = []
        self._ref_pool_y: List[np.ndarray] = []
        self._prev_grad_x = np.empty(n, dtype=np.float64)
        self._prev_grad_y = np.empty(n, dtype=np.float64)
        self._bb_dx = np.empty(2 * n, dtype=np.float64)
        self._bb_dg = np.empty(2 * n, dtype=np.float64)

    # ------------------------------------------------------------------
    def _bb_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        grad_x: np.ndarray,
        grad_y: np.ndarray,
    ) -> float:
        """Barzilai-Borwein step-size estimate, clamped to the allowed range."""
        state = self.state
        if state.prev_grad_x is None or state.prev_x is None:
            return self.step
        n = x.size
        dx = self._bb_dx
        dg = self._bb_dg
        np.subtract(x, state.prev_x, out=dx[:n])
        np.subtract(y, state.prev_y, out=dx[n:])
        np.subtract(grad_x, state.prev_grad_x, out=dg[:n])
        np.subtract(grad_y, state.prev_grad_y, out=dg[n:])
        dg_dot = float(np.dot(dg, dg))
        if dg_dot <= 1e-30:
            return self.step
        step = abs(float(np.dot(dx, dg))) / dg_dot
        return float(np.clip(step, self.min_step, self.max_step))

    def _take_ref(self, pool: List[np.ndarray], like: np.ndarray) -> np.ndarray:
        # contract: allow(alloc) reason=pool warm-up only; steady-state iterations pop recycled buffers
        return pool.pop() if pool else np.empty_like(like)

    def step_once(
        self,
        grad_fn: GradientFn,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Perform one Nesterov update; returns the new major solution.

        The returned arrays are freshly allocated each call (they escape to
        the caller); the gradient arrays from ``grad_fn`` are treated as
        borrowed and copied into owned state.
        """
        state = self.state
        mask = self.movable_mask

        grad_x, grad_y = grad_fn(state.reference_x, state.reference_y)
        self.step = self._bb_step(state.reference_x, state.reference_y, grad_x, grad_y)

        # contract: allow(alloc) reason=the new major escapes to the caller (history, result) and must stay fresh
        new_major_x = state.reference_x.copy()
        # contract: allow(alloc) reason=the new major escapes to the caller (history, result) and must stay fresh
        new_major_y = state.reference_y.copy()
        new_major_x[mask] -= self.step * grad_x[mask]
        new_major_y[mask] -= self.step * grad_y[mask]

        # Nesterov momentum coefficient sequence a_{k+1} = (1+sqrt(4a_k^2+1))/2.
        next_momentum = 0.5 * (1.0 + np.sqrt(4.0 * state.momentum**2 + 1.0))
        beta = (state.momentum - 1.0) / next_momentum

        new_reference_x = self._take_ref(self._ref_pool_x, new_major_x)
        new_reference_y = self._take_ref(self._ref_pool_y, new_major_y)
        np.copyto(new_reference_x, new_major_x)
        np.copyto(new_reference_y, new_major_y)
        new_reference_x[mask] += beta * (new_major_x[mask] - state.major_x[mask])
        new_reference_y[mask] += beta * (new_major_y[mask] - state.major_y[mask])

        # Rotate: the outgoing prev buffers are free again, the evaluated
        # reference becomes prev, and the owned gradient copies become the
        # BB history for the next iteration.
        if state.prev_x is not None:
            self._ref_pool_x.append(state.prev_x)
            self._ref_pool_y.append(state.prev_y)
        state.prev_x = state.reference_x
        state.prev_y = state.reference_y
        np.copyto(self._prev_grad_x, grad_x)
        np.copyto(self._prev_grad_y, grad_y)
        state.prev_grad_x = self._prev_grad_x
        state.prev_grad_y = self._prev_grad_y
        state.major_x = new_major_x
        state.major_y = new_major_y
        state.reference_x = new_reference_x
        state.reference_y = new_reference_y
        state.momentum = next_momentum
        self.iteration += 1
        return new_major_x, new_major_y

    def reset_momentum(self) -> None:
        """Restart momentum (used when the objective changes, e.g. when the
        timing term switches on or the density multiplier jumps)."""
        self.state.momentum = 1.0
        np.copyto(self.state.reference_x, self.state.major_x)
        np.copyto(self.state.reference_y, self.state.major_y)

    @property
    def solution(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.state.major_x, self.state.major_y
