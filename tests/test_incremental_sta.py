"""Incremental STA: exact parity with full recompute, tolerance behavior,
fallback flag, and update statistics."""

import numpy as np
import pytest

from repro.benchgen import benchmark_names, load_benchmark
from repro.timing import STAEngine


def _assert_results_equal(full, inc, atol=0.0):
    np.testing.assert_allclose(inc.arrival, full.arrival, atol=atol, rtol=0)
    np.testing.assert_allclose(inc.required, full.required, atol=atol, rtol=0)
    np.testing.assert_allclose(inc.slack, full.slack, atol=atol, rtol=0)
    np.testing.assert_allclose(inc.arc_delay, full.arc_delay, atol=atol, rtol=0)
    np.testing.assert_allclose(inc.net_load, full.net_load, atol=atol, rtol=0)
    np.testing.assert_allclose(inc.endpoint_slack, full.endpoint_slack, atol=atol, rtol=0)
    assert inc.wns == pytest.approx(full.wns, abs=max(atol, 1e-12))
    assert inc.tns == pytest.approx(full.tns, abs=max(atol, 1e-12))


def _perturb(design, rng, x, y, max_cells=40, sigma=25.0):
    movable = design.arrays.movable_index
    k = int(rng.integers(1, min(max_cells, movable.size)))
    idx = rng.choice(movable, size=k, replace=False)
    x[idx] += rng.normal(0.0, sigma, size=k)
    y[idx] += rng.normal(0.0, sigma, size=k)


class TestIncrementalParity:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_wns_tns_identical_on_suite(self, name):
        """Acceptance: identical WNS/TNS (atol 1e-9) on every sb_mini design."""
        design = load_benchmark(name, scale=0.5)
        full = STAEngine(design)
        inc = STAEngine(design, incremental=True)
        rng = np.random.default_rng([ord(c) for c in name])
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        for _ in range(4):
            _perturb(design, rng, x, y)
            r_full = full.update_timing(x, y)
            r_inc = inc.update_timing(x, y)
            assert r_inc.wns == pytest.approx(r_full.wns, abs=1e-9)
            assert r_inc.tns == pytest.approx(r_full.tns, abs=1e-9)

    def test_zero_tolerance_is_bitwise_exact(self, fresh_small_design):
        design = fresh_small_design
        full = STAEngine(design)
        inc = STAEngine(design, incremental=True, move_tolerance=0.0)
        rng = np.random.default_rng(7)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        for _step in range(6):
            _perturb(design, rng, x, y, max_cells=30)
            r_full = full.update_timing(x, y)
            r_inc = inc.update_timing(x, y)
            _assert_results_equal(r_full, r_inc, atol=0.0)
            assert inc.last_update_stats.mode in {"incremental", "full"}

    def test_incremental_touches_fewer_pins(self, fresh_small_design):
        design = fresh_small_design
        inc = STAEngine(design, incremental=True)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        inc.update_timing(x, y)
        assert inc.last_update_stats.mode == "full"
        moved = design.arrays.movable_index[:2]
        x[moved] += 5.0
        inc.update_timing(x, y)
        stats = inc.last_update_stats
        assert stats.mode == "incremental"
        assert stats.num_moved_instances == 2
        assert 0 < stats.num_dirty_nets < design.num_nets
        assert stats.num_forward_pins < design.num_pins

    def test_no_motion_short_circuits(self, fresh_small_design):
        design = fresh_small_design
        inc = STAEngine(design, incremental=True)
        x, y = design.positions()
        first = inc.update_timing(x, y)
        again = inc.update_timing(x, y)
        assert inc.last_update_stats.mode == "incremental"
        assert inc.last_update_stats.num_moved_instances == 0
        _assert_results_equal(first, again)

    def test_tolerance_ignores_tiny_drift(self, fresh_small_design):
        design = fresh_small_design
        inc = STAEngine(design, incremental=True, move_tolerance=1.0)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        baseline = inc.update_timing(x, y)
        x[design.arrays.movable_index] += 1e-3  # far below the tolerance
        drifted = inc.update_timing(x, y)
        assert inc.last_update_stats.num_moved_instances == 0
        np.testing.assert_array_equal(drifted.arrival, baseline.arrival)

    def test_exact_fallback_flag_forces_full(self, fresh_small_design):
        design = fresh_small_design
        inc = STAEngine(design, incremental=True)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        inc.update_timing(x, y)
        x[design.arrays.movable_index[:3]] += 4.0
        inc.update_timing(x, y, incremental=False)
        assert inc.last_update_stats.mode == "full"

    def test_large_motion_falls_back_to_full(self, fresh_small_design):
        design = fresh_small_design
        inc = STAEngine(design, incremental=True, incremental_rebuild_fraction=0.1)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        inc.update_timing(x, y)
        x += 10.0  # every instance moves -> way past the 10% dirty-net budget
        inc.update_timing(x, y)
        assert inc.last_update_stats.mode == "full"

    def test_per_call_override_does_not_alias_results(self, fresh_small_design):
        """A per-call incremental update must not rewrite results handed out
        by earlier calls, even when the engine default is full mode."""
        design = fresh_small_design
        engine = STAEngine(design)  # incremental=False by default
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        first = engine.update_timing(x, y)
        arrival_snapshot = first.arrival.copy()
        delay_snapshot = first.arc_delay.copy()
        x[design.arrays.movable_index[:4]] += 7.0
        second = engine.update_timing(x, y, incremental=True)
        slack_snapshot = second.slack.copy()
        x[design.arrays.movable_index[4:8]] += 7.0
        engine.update_timing(x, y, incremental=True)
        np.testing.assert_array_equal(first.arrival, arrival_snapshot)
        np.testing.assert_array_equal(first.arc_delay, delay_snapshot)
        np.testing.assert_array_equal(second.slack, slack_snapshot)
        np.testing.assert_array_equal(second.slack, second.required - second.arrival)

    def test_results_do_not_alias_between_updates(self, fresh_small_design):
        design = fresh_small_design
        inc = STAEngine(design, incremental=True)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        first = inc.update_timing(x, y)
        arrival_before = first.arrival.copy()
        _perturb(design, np.random.default_rng(1), x, y)
        inc.update_timing(x, y)
        np.testing.assert_array_equal(first.arrival, arrival_before)


class TestCacheReseeding:
    """Every cache must be reseeded by a full update or a constraints swap."""

    def test_constraints_swap_matches_fresh_engine(self, fresh_small_design):
        """Flipping constraints mid-session must be bitwise identical to a
        fresh engine built with the new constraints (tolerance 0)."""
        from repro.timing import TimingConstraints

        design = fresh_small_design
        engine = STAEngine(design, incremental=True, move_tolerance=0.0)
        rng = np.random.default_rng(11)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        engine.update_timing(x, y)
        _perturb(design, rng, x, y)
        engine.update_timing(x, y)

        tightened = TimingConstraints.from_design(design)
        tightened.clock_period = tightened.clock_period * 0.6
        engine.constraints = tightened  # property routes through set_constraints

        # Next update must be a full pass (stale arrival/required dropped) …
        r_swapped = engine.update_timing(x, y)
        assert engine.last_update_stats.mode == "full"
        # … and bitwise identical to an engine that never saw the old mode.
        fresh = STAEngine(design, tightened, incremental=True, move_tolerance=0.0)
        r_fresh = fresh.update_timing(x, y)
        _assert_results_equal(r_fresh, r_swapped, atol=0.0)

        # Incremental updates after the swap stay exact too.
        for _ in range(3):
            _perturb(design, rng, x, y)
            r_swapped = engine.update_timing(x, y)
            r_fresh = fresh.update_timing(x, y)
            _assert_results_equal(r_fresh, r_swapped, atol=0.0)

    def test_constraints_swap_via_setter_equals_method(self, fresh_small_design):
        from repro.timing import TimingConstraints

        design = fresh_small_design
        a = STAEngine(design)
        b = STAEngine(design)
        new = TimingConstraints.from_design(design)
        new.clock_period *= 0.5
        a.constraints = new
        b.set_constraints(new)
        ra = a.update_timing()
        rb = b.update_timing()
        _assert_results_equal(ra, rb, atol=0.0)
        assert a.constraints is new

    def test_full_update_reseeds_reference_positions(self, fresh_small_design):
        """update_timing(incremental=False) must reseed the moved-cell
        reference, so later incremental updates diff against the *new*
        positions, not the ones from before the full pass."""
        design = fresh_small_design
        engine = STAEngine(design, incremental=True)
        x, y = design.positions()
        x, y = x.copy(), y.copy()
        engine.update_timing(x, y)
        x[design.arrays.movable_index[:5]] += 9.0
        engine.update_timing(x, y, incremental=False)
        assert engine.last_update_stats.mode == "full"
        # No motion since the full pass: the incremental diff must be empty.
        engine.update_timing(x, y)
        assert engine.last_update_stats.mode == "incremental"
        assert engine.last_update_stats.num_moved_instances == 0

    def test_swap_then_incremental_flag_does_not_resurrect_stale_caches(
        self, fresh_small_design
    ):
        """After a swap, even an explicit incremental=True call must fall
        back to a full pass rather than re-propagating from empty caches."""
        from repro.timing import TimingConstraints

        design = fresh_small_design
        engine = STAEngine(design, incremental=True)
        engine.update_timing()
        new = TimingConstraints.from_design(design)
        new.clock_period *= 0.7
        engine.set_constraints(new)
        engine.update_timing(incremental=True)
        assert engine.last_update_stats.mode == "full"


class TestSTAResultMemoization:
    def test_failing_endpoints_worst_slack_first(self, fresh_small_design):
        result = STAEngine(fresh_small_design).update_timing()
        failing = result.failing_endpoints
        slacks = [result.endpoint_slack_of(int(p)) for p in failing]
        assert slacks == sorted(slacks), "endpoints must come back worst-slack-first"
        assert all(s < 0 for s in slacks)

    def test_failing_endpoints_cached(self, fresh_small_design):
        result = STAEngine(fresh_small_design).update_timing()
        assert result.failing_endpoints is result.failing_endpoints

    def test_endpoint_slack_of_matches_arrays(self, fresh_small_design):
        result = STAEngine(fresh_small_design).update_timing()
        for position, pin in enumerate(result.endpoint_pins):
            assert result.endpoint_slack_of(int(pin)) == pytest.approx(
                float(result.endpoint_slack[position])
            )

    def test_endpoint_slack_of_raises_for_non_endpoint(self, fresh_small_design):
        result = STAEngine(fresh_small_design).update_timing()
        non_endpoint = set(range(fresh_small_design.num_pins)) - set(
            int(p) for p in result.endpoint_pins
        )
        with pytest.raises(KeyError):
            result.endpoint_slack_of(next(iter(non_endpoint)))
