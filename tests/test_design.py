"""Unit tests for the Design data model."""

import numpy as np
import pytest

from repro.netlist import Design


class TestConstruction:
    def test_add_instance_and_lookup(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        inst = design.add_instance("u1", "INV_X1", x=10, y=12)
        assert design.instance("u1") is inst
        assert design.has_instance("u1")
        assert inst.width == library.cell("INV_X1").width

    def test_duplicate_instance_raises(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        design.add_instance("u1", "INV_X1")
        with pytest.raises(ValueError):
            design.add_instance("u1", "INV_X1")

    def test_unknown_cell_raises(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        with pytest.raises(KeyError):
            design.add_instance("u1", "NOT_A_CELL")

    def test_add_port_direction(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        pi = design.add_port("in0", "input", x=0, y=5)
        po = design.add_port("out0", "output", x=100, y=5)
        assert pi.is_port and pi.fixed
        # An input port drives a net: its single pin is an output pin.
        assert next(iter(pi.cell.pins.values())).is_output
        assert next(iter(po.cell.pins.values())).is_input

    def test_connect_by_names(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        design.add_instance("u1", "INV_X1")
        design.add_net("n1")
        pin = design.connect("n1", "u1", "a")
        assert pin.net is design.net("n1")
        assert pin in design.net("n1").pins

    def test_connect_twice_raises(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        design.add_instance("u1", "INV_X1")
        design.add_net("n1")
        design.add_net("n2")
        design.connect("n1", "u1", "a")
        with pytest.raises(ValueError):
            design.connect("n2", "u1", "a")

    def test_connect_unknown_pin_raises(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        design.add_instance("u1", "INV_X1")
        design.add_net("n1")
        with pytest.raises(KeyError):
            design.connect("n1", "u1", "zz")

    def test_multiple_drivers_rejected_at_finalize(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        design.add_instance("u1", "INV_X1")
        design.add_instance("u2", "INV_X1")
        design.add_net("n1")
        design.connect("n1", "u1", "o")
        design.connect("n1", "u2", "o")
        with pytest.raises(ValueError):
            design.finalize()

    def test_mutation_after_finalize_raises(self, tiny_design):
        with pytest.raises(RuntimeError):
            tiny_design.add_net("late")


class TestQueries:
    def test_counts(self, tiny_design):
        assert tiny_design.num_instances == 7  # 4 cells + 3 ports
        assert len(tiny_design.cells) == 4
        assert len(tiny_design.ports) == 3
        assert tiny_design.num_nets == 6

    def test_pin_lookup_by_path(self, tiny_design):
        pin = tiny_design.pin("u1/a")
        assert pin.full_name == "u1/a"
        assert tiny_design.pin("u1", "a") is pin

    def test_port_pin_lookup(self, tiny_design):
        pin = tiny_design.pin("in0")
        assert pin.instance.is_port

    def test_net_driver_and_sinks(self, tiny_design):
        net = tiny_design.net("n1")
        assert net.driver.full_name == "ff1/q"
        assert [p.full_name for p in net.sinks] == ["u1/a"]

    def test_net_hpwl(self, tiny_design):
        net = tiny_design.net("n1")
        ff1 = tiny_design.instance("ff1")
        u1 = tiny_design.instance("u1")
        qx, qy = tiny_design.pin("ff1/q").position()
        ax, ay = tiny_design.pin("u1/a").position()
        assert net.hpwl() == pytest.approx(abs(qx - ax) + abs(qy - ay))

    def test_summary_keys(self, tiny_design):
        summary = tiny_design.summary()
        assert summary["num_cells"] == 4
        assert summary["num_sequential"] == 2
        assert summary["clock_period"] == 100.0

    def test_utilization_between_zero_and_one(self, small_design):
        assert 0.0 < small_design.utilization() < 1.0


class TestArraysAndPositions:
    def test_arrays_shapes(self, tiny_design):
        arrays = tiny_design.arrays
        assert arrays.inst_width.shape == (tiny_design.num_instances,)
        assert arrays.pin_instance.shape == (tiny_design.num_pins,)
        assert arrays.net_pin_offsets.shape == (tiny_design.num_nets + 1,)
        assert arrays.net_pin_index.shape == (tiny_design.num_pins,)

    def test_arrays_require_finalize(self, library):
        design = Design("d", die=(0, 0, 100, 96), library=library)
        with pytest.raises(RuntimeError):
            _ = design.arrays

    def test_net_pins_csr(self, tiny_design):
        arrays = tiny_design.arrays
        net = tiny_design.net("nclk")
        pins = arrays.net_pins(net.index)
        assert set(pins.tolist()) == {p.index for p in net.pins}

    def test_positions_roundtrip(self, tiny_design):
        x, y = tiny_design.positions()
        x2 = x.copy()
        x2[tiny_design.instance("u1").index] = 55.0
        tiny_design.set_positions(x2, y)
        assert tiny_design.instance("u1").x == 55.0

    def test_set_positions_keeps_fixed(self, tiny_design):
        x, y = tiny_design.positions()
        port_index = tiny_design.instance("in0").index
        original = tiny_design.instance("in0").x
        x[port_index] = 999.0
        tiny_design.set_positions(x, y)
        assert tiny_design.instance("in0").x == original

    def test_set_positions_wrong_shape_raises(self, tiny_design):
        with pytest.raises(ValueError):
            tiny_design.set_positions(np.zeros(3), np.zeros(3))

    def test_pin_positions_use_offsets(self, tiny_design):
        px, py = tiny_design.pin_positions()
        pin = tiny_design.pin("u1/a")
        assert px[pin.index] == pytest.approx(pin.position()[0])
        assert py[pin.index] == pytest.approx(pin.position()[1])

    def test_movable_mask_excludes_ports(self, tiny_design):
        arrays = tiny_design.arrays
        for port in tiny_design.ports:
            assert not arrays.movable_mask[port.index]


class TestRows:
    def test_rows_fill_die(self, tiny_design):
        rows = tiny_design.rows()
        assert len(rows) == 17  # 204 / 12
        assert rows[0].y == 0
        assert rows[-1].y + rows[-1].height <= tiny_design.die.yh + 1e-9

    def test_row_sites(self, tiny_design):
        row = tiny_design.rows()[0]
        assert row.num_sites == int(tiny_design.die.width)

    def test_total_hpwl_positive(self, tiny_design):
        assert tiny_design.total_hpwl() > 0
