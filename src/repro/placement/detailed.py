"""Detailed placement: within-row adjacent-cell swapping, delta-HPWL.

After legalization, neighbouring cells in the same row are swapped whenever
the swap reduces total HPWL of the nets touching them.  This is a small
local-search refinement comparable in spirit (not in strength) to the
independent-set matching used by industrial flows; the paper's evaluation is
about global placement, so detailed placement is deliberately lightweight and
optional.

Delta-HPWL swap engine (PR 10)
------------------------------

The original implementation recomputed ``hpwl_per_net`` over the **entire
design** (plus a full ``x.copy()``) for every candidate swap — O(passes ×
cells × pins).  :meth:`DetailedPlacer.refine` now evaluates each candidate
incrementally:

* the nets touching each instance come from the cached instance→net CSR on
  :class:`~repro.netlist.core.DesignCore` (``instance_nets_plan``);
* a maintained ``per_net`` array carries every net's current HPWL, so
  ``before`` is a lookup; ``after`` recomputes only the touched nets through
  the cached HPWL scatter plan (``np.take`` + ``maximum/minimum.reduceat``
  into preallocated buffers — no full-array copies anywhere);
* pin coordinates live in one ``pin_x`` array updated in place per candidate
  (each instance's pins are a contiguous slice) and restored on rejection.

``_reference_refine`` is the bitwise twin with the pre-PR cost model (full
``hpwl_per_net`` + ``x.copy()`` per candidate): both paths share the same
candidate ordering and merge helper and sum net values left-to-right, so
every accept/reject decision — and therefore the final positions — is
bitwise identical (property-tested).

Behavior changes vs the pre-PR placer (documented, golden-pinned in the
tests; the four flow presets do not run detailed placement, so the preset
goldens are unaffected):

* **Stale-order bugfix:** the old pass iterated ``zip(row_cells,
  row_cells[1:])`` — a pair list frozen at the start of the row pass, so
  after an accepted swap later pairs were evaluated against pre-swap
  neighbours.  Pairs are now re-derived from the maintained row order, so
  each candidate sees the post-swap positions of everything before it.
* **Deterministic ordering:** rows are visited bottom-up (ascending y) and
  cells within a row in ascending x (ties by instance index), instead of
  Python-set iteration order over float y keys.
* **Net sums:** a candidate's before/after totals sum the touched nets'
  HPWL left-to-right over the ascending merged net list (the old path
  summed a ``set``-ordered fancy-index gather pairwise).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.netlist.core import as_core
from repro.obs import span


class DetailedPlacer:
    """Greedy adjacent-swap refinement on a legalized placement."""

    def __init__(self, design, *, max_passes: int = 2) -> None:
        self.core = as_core(design)
        self.max_passes = max_passes
        self._plan_ready = False

    # ------------------------------------------------------------------
    # Topology-derived plan (cached across refine calls)
    # ------------------------------------------------------------------
    def _ensure_plan(self) -> None:
        """Build the swap-evaluation plan and scratch buffers once."""
        if self._plan_ready:
            return
        core = self.core
        offsets, nets = core.instance_nets_plan()
        valid_ids, pins, seg, legacy_clean = core._hpwl_scatter_plan()
        num_nets = core.num_nets

        net_valid = np.zeros(num_nets, dtype=bool)
        net_valid[valid_ids] = True
        net_clean = np.zeros(num_nets, dtype=bool)
        net_clean[valid_ids] = legacy_clean

        # Compact-plan segment bounds per net (only meaningful for valid
        # nets): net t's pins are plan_pins[net_start[t]:net_end[t]].
        counts = np.bincount(seg, minlength=valid_ids.size)
        bounds = np.zeros(valid_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        net_start = np.zeros(num_nets, dtype=np.int64)
        net_end = np.zeros(num_nets, dtype=np.int64)
        net_start[valid_ids] = bounds[:-1]
        net_end[valid_ids] = bounds[1:]

        # Python-list mirrors for the scalar-hot merge/sum loops.
        self._inet_offsets = offsets.tolist()
        self._inet_nets = nets.tolist()
        self._net_valid = net_valid.tolist()
        self._net_clean = net_clean.tolist()
        self._net_start = net_start.tolist()
        self._net_end = net_end.tolist()
        self._plan_pins = pins

        # Scratch sized for the widest possible merged candidate: two
        # instances' distinct nets, and all of those nets' plan pins.
        deg = np.diff(offsets)
        max_nets = 2 * int(deg.max()) if deg.size else 0
        valid_counts = np.where(net_valid[nets], net_end[nets] - net_start[nets], 0)
        pin_load = np.zeros(core.num_instances, dtype=np.int64)
        np.add.at(pin_load, np.repeat(np.arange(core.num_instances), deg), valid_counts)
        max_pins = 2 * int(pin_load.max()) if pin_load.size else 0

        m = max(max_nets, 1)
        p = max(max_pins, 1)
        self._starts_buf = np.empty(m, dtype=np.int64)
        self._pin_buf = np.empty(p, dtype=np.int64)
        self._gx_buf = np.empty(p, dtype=np.float64)
        self._gy_buf = np.empty(p, dtype=np.float64)
        self._xmax_buf = np.empty(m, dtype=np.float64)
        self._xmin_buf = np.empty(m, dtype=np.float64)
        self._ymax_buf = np.empty(m, dtype=np.float64)
        self._ymin_buf = np.empty(m, dtype=np.float64)
        self._dx_buf = np.empty(m, dtype=np.float64)
        self._dy_buf = np.empty(m, dtype=np.float64)
        self._clean_val_buf = np.empty(m, dtype=np.float64)
        self._plain_val_buf = np.empty(m, dtype=np.float64)
        self._plan_ready = True

    def _merged_nets(self, left: int, right: int) -> List[int]:
        """Ascending, de-duplicated valid nets touching either instance.

        Shared by the delta path and the reference twin so both evaluate
        candidates over the identical ordered net list.  Degenerate (<2 pin)
        nets are dropped: their HPWL is pinned at +0.0, so they contribute
        nothing to either side of the accept comparison.
        """
        offsets = self._inet_offsets
        nets = self._inet_nets
        valid = self._net_valid
        merged = sorted(
            set(nets[offsets[left] : offsets[left + 1]])
            | set(nets[offsets[right] : offsets[right + 1]])
        )
        return [t for t in merged if valid[t]]

    def _row_order(self, x: np.ndarray, y: np.ndarray) -> List[List[int]]:
        """Movable cells grouped by row, bottom-up; within a row ascending x
        (ties by instance index).  The returned lists are mutated in place
        as swaps are accepted, maintaining the x-order incrementally."""
        movable = self.core.movable_index
        if movable.size == 0:
            return []
        order = np.lexsort((movable, x[movable], y[movable]))
        cells = movable[order]
        ys = y[cells]
        breaks = np.nonzero(ys[1:] != ys[:-1])[0] + 1
        return [part.tolist() for part in np.split(cells, breaks)]

    # ------------------------------------------------------------------
    # Delta-HPWL hot path
    # ------------------------------------------------------------------
    def refine(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        max_candidates: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Return refined positions and the number of accepted swaps.

        ``max_candidates`` caps the number of evaluated pairs (benches and
        parity tests use it to compare against the per-candidate-priced
        reference twin on large designs); ``None`` means unlimited.
        """
        core = self.core
        if x is None or y is None:
            x, y = core.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()
        self._ensure_plan()

        pin_x, pin_y = core.pin_positions(x, y)
        per_net = core.hpwl_per_net(pin_x=pin_x, pin_y=pin_y)
        rows = self._row_order(x, y)
        inst_width = core.inst_width
        ipo = core.inst_pin_offsets
        pox = core.pin_offset_x

        accepted = 0
        examined = 0
        budget = -1 if max_candidates is None else int(max_candidates)
        with span("detailed.refine", cells=int(core.movable_index.size)):
            for _ in range(self.max_passes):
                improved_this_pass = 0
                for row_cells in rows:
                    for i in range(len(row_cells) - 1):
                        if examined == budget:
                            break
                        left = row_cells[i]
                        right = row_cells[i + 1]
                        nets = self._merged_nets(left, right)
                        if not nets:
                            continue
                        examined += 1
                        if self._try_swap(
                            left, right, nets, x, pin_x, pin_y,
                            per_net, inst_width, ipo, pox,
                        ):
                            row_cells[i] = right
                            row_cells[i + 1] = left
                            accepted += 1
                            improved_this_pass += 1
                    if examined == budget:
                        break
                if improved_this_pass == 0 or examined == budget:
                    break
        return x, y, accepted

    def _try_swap(
        self,
        left: int,
        right: int,
        nets: List[int],
        x: np.ndarray,
        pin_x: np.ndarray,
        pin_y: np.ndarray,
        per_net: np.ndarray,
        inst_width: np.ndarray,
        ipo: np.ndarray,
        pox: np.ndarray,
    ) -> bool:
        """Evaluate one adjacent swap through the touched nets only.

        Tentatively rewrites both instances' (contiguous) pin slices in
        ``pin_x``, recomputes just the merged nets via the scatter plan into
        preallocated buffers, and either commits (``x``/``per_net``/pin
        slices already consistent) or restores the pin slices from the
        unchanged ``x``.  Zero per-candidate array allocation — this is the
        registered steady-state body.
        """
        before = 0.0
        for t in nets:
            before += per_net[t]

        new_right = x[left]
        new_left = x[left] + inst_width[right]

        llo, lhi = ipo[left], ipo[left + 1]
        rlo, rhi = ipo[right], ipo[right + 1]
        pin_x[llo:lhi] = new_left + pox[llo:lhi]
        pin_x[rlo:rhi] = new_right + pox[rlo:rhi]

        # Gather the touched nets' plan pins into one concatenated segment
        # list, then reduce each segment (IEEE min/max: order-independent,
        # bitwise-identical to the full vectorized pass).
        net_start = self._net_start
        net_end = self._net_end
        starts = self._starts_buf
        pin_buf = self._pin_buf
        m = len(nets)
        total = 0
        for j, t in enumerate(nets):
            starts[j] = total
            cs = net_start[t]
            ce = net_end[t]
            pin_buf[total : total + (ce - cs)] = self._plan_pins[cs:ce]
            total += ce - cs

        gx = self._gx_buf[:total]
        gy = self._gy_buf[:total]
        np.take(pin_x, pin_buf[:total], out=gx)
        np.take(pin_y, pin_buf[:total], out=gy)
        xmax = self._xmax_buf[:m]
        xmin = self._xmin_buf[:m]
        ymax = self._ymax_buf[:m]
        ymin = self._ymin_buf[:m]
        np.maximum.reduceat(gx, starts[:m], out=xmax)
        np.minimum.reduceat(gx, starts[:m], out=xmin)
        np.maximum.reduceat(gy, starts[:m], out=ymax)
        np.minimum.reduceat(gy, starts[:m], out=ymin)

        # Replay hpwl_per_net's historical grouping split per net:
        # "clean" nets fold left-associated, the rest pair the axes.
        dx = self._dx_buf[:m]
        dy = self._dy_buf[:m]
        np.subtract(xmax, xmin, out=dx)
        np.subtract(ymax, ymin, out=dy)
        clean_val = self._clean_val_buf[:m]
        plain_val = self._plain_val_buf[:m]
        np.add(dx, ymax, out=clean_val)
        np.subtract(clean_val, ymin, out=clean_val)
        np.add(dx, dy, out=plain_val)

        net_clean = self._net_clean
        after = 0.0
        for j, t in enumerate(nets):
            after += clean_val[j] if net_clean[t] else plain_val[j]

        if after + 1e-9 < before:
            x[left] = new_left
            x[right] = new_right
            for j, t in enumerate(nets):
                per_net[t] = clean_val[j] if net_clean[t] else plain_val[j]
            return True

        # Reject: restore the tentative pin slices from the unchanged x —
        # the same gather expression that produced them originally.
        pin_x[llo:lhi] = x[left] + pox[llo:lhi]
        pin_x[rlo:rhi] = x[right] + pox[rlo:rhi]
        return False

    # ------------------------------------------------------------------
    # Reference twin (pre-PR cost model; kept for parity tests and benches)
    # ------------------------------------------------------------------
    def _reference_refine(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        *,
        max_candidates: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Full-recompute twin of :meth:`refine` (bitwise-identical result).

        Same candidate ordering, same merge helper, same left-to-right net
        sums — but every candidate pays a full ``hpwl_per_net`` pass over
        the design for both sides of the comparison plus an ``x.copy()``,
        which is exactly the pre-PR cost model the delta engine replaces.
        """
        core = self.core
        if x is None or y is None:
            x, y = core.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()
        self._ensure_plan()

        rows = self._row_order(x, y)
        inst_width = core.inst_width

        accepted = 0
        examined = 0
        budget = -1 if max_candidates is None else int(max_candidates)
        for _ in range(self.max_passes):
            improved_this_pass = 0
            for row_cells in rows:
                for i in range(len(row_cells) - 1):
                    if examined == budget:
                        break
                    left = row_cells[i]
                    right = row_cells[i + 1]
                    nets = self._merged_nets(left, right)
                    if not nets:
                        continue
                    examined += 1
                    base = core.hpwl_per_net(x, y)
                    before = 0.0
                    for t in nets:
                        before += base[t]
                    new_x = x.copy()
                    # Swap: right cell takes left's slot, left goes after it.
                    new_x[right] = x[left]
                    new_x[left] = x[left] + inst_width[right]
                    trial = core.hpwl_per_net(new_x, y)
                    after = 0.0
                    for t in nets:
                        after += trial[t]
                    if after + 1e-9 < before:
                        x = new_x
                        row_cells[i] = right
                        row_cells[i + 1] = left
                        accepted += 1
                        improved_this_pass += 1
                if examined == budget:
                    break
            if improved_this_pass == 0 or examined == budget:
                break
        return x, y, accepted

    def apply(self, x: np.ndarray, y: np.ndarray) -> None:
        self.core.set_positions(x, y)
