"""Pin-to-pin distance losses (Sec. III-C).

Given a set of attracted pin pairs with weights, each loss returns the total
weighted value and its gradient with respect to the pin coordinates:

* :class:`QuadraticLoss` — ``Q(i,j) = (xi-xj)^2 + (yi-yj)^2`` (Eq. 8), the
  paper's choice, matching the Elmore delay's quadratic dependence on length.
* :class:`LinearLoss` — Euclidean distance (smoothed near zero); gradients
  have unit magnitude, so the optimizer cannot distinguish long from short
  segments along a path.
* :class:`HPWLPairLoss` — ``|dx| + |dy|`` (smoothed), the per-pair analogue
  of the ordinary wirelength objective; also direction-only gradients.

All three are evaluated fully vectorized over the pair arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class PairLoss:
    """Interface: weighted pin-pair distance loss with analytic gradient."""

    name = "abstract"

    def evaluate(
        self,
        dx: np.ndarray,
        dy: np.ndarray,
        weights: np.ndarray,
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        """Return ``(value, dvalue/d(dx), dvalue/d(dy))`` for each pair.

        ``dx = x_i - x_j`` and ``dy = y_i - y_j``; gradients returned are with
        respect to ``dx``/``dy`` (per pair, already multiplied by the weight).
        """
        raise NotImplementedError


class QuadraticLoss(PairLoss):
    """Squared Euclidean distance (the paper's quadratic loss, Eq. 8)."""

    name = "quadratic"

    def evaluate(
        self, dx: np.ndarray, dy: np.ndarray, weights: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        value = float(np.sum(weights * (dx * dx + dy * dy)))
        grad_dx = 2.0 * weights * dx
        grad_dy = 2.0 * weights * dy
        return value, grad_dx, grad_dy


class LinearLoss(PairLoss):
    """Euclidean distance, smoothed near zero to keep the gradient bounded."""

    name = "linear"

    def __init__(self, epsilon: float = 1e-3) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)

    def evaluate(
        self, dx: np.ndarray, dy: np.ndarray, weights: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        dist = np.sqrt(dx * dx + dy * dy + self.epsilon * self.epsilon)
        value = float(np.sum(weights * dist))
        grad_dx = weights * dx / dist
        grad_dy = weights * dy / dist
        return value, grad_dx, grad_dy


class HPWLPairLoss(PairLoss):
    """Manhattan distance per pair, smoothed with a pseudo-Huber kernel."""

    name = "hpwl"

    def __init__(self, epsilon: float = 1e-3) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)

    def evaluate(
        self, dx: np.ndarray, dy: np.ndarray, weights: np.ndarray
    ) -> Tuple[float, np.ndarray, np.ndarray]:
        eps2 = self.epsilon * self.epsilon
        sx = np.sqrt(dx * dx + eps2)
        sy = np.sqrt(dy * dy + eps2)
        value = float(np.sum(weights * (sx + sy)))
        grad_dx = weights * dx / sx
        grad_dy = weights * dy / sy
        return value, grad_dx, grad_dy


_LOSSES = {
    "quadratic": QuadraticLoss,
    "linear": LinearLoss,
    "hpwl": HPWLPairLoss,
}


def make_loss(name: str) -> PairLoss:
    """Instantiate a loss by name (``quadratic``, ``linear``, or ``hpwl``)."""
    try:
        return _LOSSES[name]()
    except KeyError as exc:
        raise ValueError(
            f"Unknown loss {name!r}; choose from {sorted(_LOSSES)}"
        ) from exc
