"""Validate an exported trace file: ``python -m repro.obs trace.json``.

Exit status 0 when the file passes :func:`validate_chrome_trace`, 1
otherwise.  CI's trace-smoke step runs this against the ``repro run
--trace`` artifact so a malformed export fails the build.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .export import validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate a Chrome trace-event / Perfetto JSON trace file.",
    )
    parser.add_argument("trace", help="path to the exported trace JSON")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"trace: cannot read {path}: {exc}")
        return 1
    except json.JSONDecodeError as exc:
        print(f"trace: {path} is not valid JSON: {exc}")
        return 1

    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print(f"trace: {path}: {problem}")
        return 1

    events = payload.get("traceEvents", [])
    complete = [event for event in events if event.get("ph") == "X"]
    names = sorted({event["name"] for event in complete})
    metrics = payload.get("otherData", {})
    print(f"trace OK: {path}")
    print(f"  events: {len(complete)} spans ({len(events)} total entries)")
    print(f"  dropped: {metrics.get('dropped', 0)}")
    preview = ", ".join(names[:12]) + (", ..." if len(names) > 12 else "")
    print(f"  span names: {preview}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
