"""Setuptools shim (the project metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
