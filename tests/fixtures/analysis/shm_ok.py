"""Fixture: SharedMemory(create=True) cleaned up on every exit path."""

import contextlib
from multiprocessing import shared_memory


def guarded_by_try(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf)
    finally:
        shm.close()
        shm.unlink()


def guarded_by_next_sibling(size):
    # The repo's canonical shape: create, then immediately enter a try whose
    # handler releases the segment on any failure.
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        shm.buf[:size] = b"\x00" * size
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm


def guarded_by_exitstack(size):
    with contextlib.ExitStack() as stack:
        shm = stack.enter_context(
            contextlib.closing(shared_memory.SharedMemory(create=True, size=size))
        )
        stack.callback(shm.unlink)
        return bytes(shm.buf)


def attach_only(name):
    # create=False (attach) needs no unlink pairing here.
    return shared_memory.SharedMemory(name=name)
