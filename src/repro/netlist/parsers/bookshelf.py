"""Bookshelf placement format helpers (.nodes / .pl).

The Bookshelf format is used by many academic placement benchmarks.  Only the
two files relevant to exchanging placements are supported:

* ``.nodes`` — node name, width, height, optional ``terminal`` keyword.
* ``.pl`` — node name, x, y, ``: N`` orientation, optional ``/FIXED``.

These are primarily useful for exporting a placement produced by this
library to external visualization or evaluation scripts, and for loading
externally produced placements back onto a :class:`repro.netlist.Design`
(matching by instance name) via :func:`apply_bookshelf_pl`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.design import Design


def parse_bookshelf_nodes(text: str) -> List[Tuple[str, float, float, bool]]:
    """Parse ``.nodes`` text into ``(name, width, height, is_terminal)`` rows."""
    rows: List[Tuple[str, float, float, bool]] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or line.startswith("UCLA") or ":" in line:
            continue
        tokens = line.split()
        if len(tokens) < 3:
            continue
        name = tokens[0]
        try:
            width = float(tokens[1])
            height = float(tokens[2])
        except ValueError:
            continue
        is_terminal = len(tokens) > 3 and tokens[3].lower().startswith("terminal")
        rows.append((name, width, height, is_terminal))
    return rows


def parse_bookshelf_pl(text: str) -> Dict[str, Tuple[float, float, bool]]:
    """Parse ``.pl`` text into ``{name: (x, y, fixed)}``."""
    placements: Dict[str, Tuple[float, float, bool]] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or line.startswith("UCLA"):
            continue
        tokens = line.split()
        if len(tokens) < 3:
            continue
        name = tokens[0]
        try:
            x = float(tokens[1])
            y = float(tokens[2])
        except ValueError:
            continue
        fixed = "/FIXED" in line.upper()
        placements[name] = (x, y, fixed)
    return placements


def parse_bookshelf_pl_file(path: str) -> Dict[str, Tuple[float, float, bool]]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_bookshelf_pl(handle.read())


def apply_bookshelf_pl(design: Design, placements: Dict[str, Tuple[float, float, bool]]) -> int:
    """Apply a parsed ``.pl`` placement onto ``design`` by instance name.

    Returns the number of instances whose position was updated.  Fixed
    instances and names absent from the design are skipped.
    """
    applied = 0
    for name, (x, y, _fixed) in placements.items():
        if not design.has_instance(name):
            continue
        inst = design.instance(name)
        if inst.fixed:
            continue
        inst.x = x
        inst.y = y
        applied += 1
    return applied
