"""Thin wrapper around :mod:`logging` with a library-wide namespace."""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_CONFIGURED = False


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    The first call installs a simple stream handler on the root ``repro``
    logger unless the application configured logging already.
    """
    global _CONFIGURED
    root = logging.getLogger(_ROOT_NAME)
    if not _CONFIGURED and not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(levelname)s] %(name)s: %(message)s")
        )
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        _CONFIGURED = True
    if name is None or name == _ROOT_NAME:
        return root
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the verbosity of all ``repro`` loggers (e.g. ``logging.DEBUG``)."""
    get_logger().setLevel(level)
