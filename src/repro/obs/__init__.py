"""Unified tracing & metrics: hierarchical spans, counters, trace export.

Quick start::

    from repro.obs import start_tracing, stop_tracing, span, write_chrome_trace

    tracer = start_tracing()
    try:
        with span("flow.run", design="sb_mini_18"):
            ...
    finally:
        stop_tracing()
    write_chrome_trace("trace.json", tracer)   # load in ui.perfetto.dev

``span(...)`` is free when no tracer is active, so instrumentation stays
inline in hot loops.  ``clock()`` is the repo's blessed monotonic clock
(the ``raw-timing`` contract rule bans direct ``time.perf_counter`` use
outside this package and ``repro.utils.profiling``).
"""

from .export import chrome_trace, validate_chrome_trace, write_chrome_trace
from .remote import ChildSpanCollector, adopt_spans, serialize_trace
from .tracer import (
    DEFAULT_CAPACITY,
    SpanRecord,
    Tracer,
    active_tracer,
    clock,
    span,
    start_tracing,
    stop_tracing,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "SpanRecord",
    "Tracer",
    "active_tracer",
    "adopt_spans",
    "ChildSpanCollector",
    "chrome_trace",
    "clock",
    "serialize_trace",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]
