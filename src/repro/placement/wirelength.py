"""Wirelength models: exact HPWL and the weighted-average (WA) smooth model.

The WA model (Hsu, Chang, Balabanov, DAC'11) approximates the max/min of the
pin coordinates of a net with log-sum-exp-style weighted averages controlled
by a smoothing parameter ``gamma``; it is the wirelength model used by
DREAMPlace and therefore by every placer in this library.  Values and
gradients are computed for all nets at once from the design's CSR
net-to-pin arrays, then pin gradients are accumulated onto instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.netlist.design import Design


def hpwl_per_net(
    design: Design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact half-perimeter wirelength of every net (zeros for degenerate nets)."""
    arrays = design.arrays
    pin_x, pin_y = design.pin_positions(x, y)
    num_nets = arrays.num_nets
    result = np.zeros(num_nets, dtype=np.float64)
    offsets = arrays.net_pin_offsets
    csr = arrays.net_pin_index
    counts = np.diff(offsets)
    valid = counts >= 2
    if not np.any(valid):
        return result
    # reduceat needs non-empty segments; operate on valid nets only.
    valid_ids = np.nonzero(valid)[0]
    starts = offsets[:-1][valid_ids]
    # Build segment boundaries for reduceat over the concatenated valid pins.
    xmax = np.maximum.reduceat(pin_x[csr], starts)
    xmin = np.minimum.reduceat(pin_x[csr], starts)
    ymax = np.maximum.reduceat(pin_y[csr], starts)
    ymin = np.minimum.reduceat(pin_y[csr], starts)
    # reduceat with ``starts`` reduces from each start to the next start (or
    # the end), which may span nets when invalid nets sit between valid ones.
    # That only happens for nets with <2 pins, which contribute their single
    # pin; including it in the neighbouring segment would corrupt the result,
    # so recompute those rare cases exactly.
    spans = np.append(starts[1:], csr.size) - starts
    clean = spans == counts[valid_ids]
    result[valid_ids[clean]] = (xmax - xmin + ymax - ymin)[clean]
    for net_id in valid_ids[~clean]:
        pins = arrays.net_pins(net_id)
        px = pin_x[pins]
        py = pin_y[pins]
        result[net_id] = (px.max() - px.min()) + (py.max() - py.min())
    return result


def total_hpwl(
    design: Design,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    *,
    net_weights: Optional[np.ndarray] = None,
) -> float:
    """Total (optionally net-weighted) HPWL of the design."""
    per_net = hpwl_per_net(design, x, y)
    if net_weights is not None:
        per_net = per_net * net_weights
    return float(per_net.sum())


@dataclass
class WirelengthResult:
    """Value and per-instance gradient of the smooth wirelength."""

    value: float
    grad_x: np.ndarray
    grad_y: np.ndarray


class WeightedAverageWirelength:
    """Weighted-average smoothed wirelength with analytic gradients.

    ``gamma`` controls smoothness: smaller values track HPWL more closely but
    yield stiffer gradients.  DREAMPlace anneals gamma with overflow; the
    :class:`repro.placement.global_placer.GlobalPlacer` does the same through
    :meth:`set_gamma`.
    """

    def __init__(self, design: Design, *, gamma: float = 5.0) -> None:
        self.design = design
        arrays = design.arrays
        self.gamma = float(gamma)
        counts = np.diff(arrays.net_pin_offsets)
        # Only nets with at least two pins contribute wirelength.
        self._valid_nets = np.nonzero(counts >= 2)[0]
        valid_mask = np.isin(
            np.repeat(np.arange(arrays.num_nets), counts), self._valid_nets
        )
        self._csr_pins = arrays.net_pin_index[valid_mask]
        self._csr_net = np.repeat(np.arange(arrays.num_nets), counts)[valid_mask]
        self._pin_instance = arrays.pin_instance
        self._num_nets = arrays.num_nets
        self._num_instances = arrays.num_instances
        self._movable_mask = arrays.movable_mask

    def set_gamma(self, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        net_weights: Optional[np.ndarray] = None,
    ) -> WirelengthResult:
        """Smoothed wirelength and its gradient w.r.t. instance positions."""
        design = self.design
        pin_x, pin_y = design.pin_positions(x, y)
        weights = (
            np.ones(self._num_nets, dtype=np.float64)
            if net_weights is None
            else np.asarray(net_weights, dtype=np.float64)
        )

        value_x, pin_grad_x = self._directional(pin_x, weights)
        value_y, pin_grad_y = self._directional(pin_y, weights)

        grad_x = np.zeros(self._num_instances, dtype=np.float64)
        grad_y = np.zeros(self._num_instances, dtype=np.float64)
        np.add.at(grad_x, self._pin_instance[self._csr_pins], pin_grad_x)
        np.add.at(grad_y, self._pin_instance[self._csr_pins], pin_grad_y)
        grad_x[~self._movable_mask] = 0.0
        grad_y[~self._movable_mask] = 0.0
        return WirelengthResult(value=value_x + value_y, grad_x=grad_x, grad_y=grad_y)

    def _directional(
        self, coord: np.ndarray, net_weights: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """WA wirelength and per-CSR-pin gradient along one axis."""
        gamma = self.gamma
        pins = self._csr_pins
        nets = self._csr_net
        num_nets = self._num_nets
        c = coord[pins]

        # Stabilize exponentials per net.
        cmax = np.full(num_nets, -np.inf)
        cmin = np.full(num_nets, np.inf)
        np.maximum.at(cmax, nets, c)
        np.minimum.at(cmin, nets, c)
        exp_pos = np.exp((c - cmax[nets]) / gamma)
        exp_neg = np.exp((cmin[nets] - c) / gamma)

        sum_pos = np.bincount(nets, weights=exp_pos, minlength=num_nets)
        sum_neg = np.bincount(nets, weights=exp_neg, minlength=num_nets)
        sum_cpos = np.bincount(nets, weights=c * exp_pos, minlength=num_nets)
        sum_cneg = np.bincount(nets, weights=c * exp_neg, minlength=num_nets)

        with np.errstate(invalid="ignore", divide="ignore"):
            wa_max = np.where(sum_pos > 0, sum_cpos / np.maximum(sum_pos, 1e-300), 0.0)
            wa_min = np.where(sum_neg > 0, sum_cneg / np.maximum(sum_neg, 1e-300), 0.0)
        per_net = wa_max - wa_min
        value = float(np.sum(per_net * net_weights))

        # Gradient of the WA max/min estimators w.r.t. each pin coordinate.
        sp = sum_pos[nets]
        sn = sum_neg[nets]
        scp = sum_cpos[nets]
        scn = sum_cneg[nets]
        grad_max = exp_pos * ((1.0 + c / gamma) * sp - scp / gamma) / np.maximum(sp * sp, 1e-300)
        grad_min = exp_neg * ((1.0 - c / gamma) * sn + scn / gamma) / np.maximum(sn * sn, 1e-300)
        pin_grad = (grad_max - grad_min) * net_weights[nets]
        return value, pin_grad
