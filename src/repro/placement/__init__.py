"""DREAMPlace-style analytical global placement substrate.

The package provides the nonlinear placement machinery the paper builds on
(Sec. II-A): a smoothed wirelength model with analytic gradients, an
electrostatics-based density penalty, a Nesterov-accelerated optimizer, and
row-based legalization.  The timing-driven placers in :mod:`repro.core` and
:mod:`repro.baselines` plug additional objective terms (net weights or
pin-to-pin attraction) into :class:`GlobalPlacer`.
"""

from repro.placement.wirelength import (
    hpwl_per_net,
    total_hpwl,
    WeightedAverageWirelength,
)
from repro.placement.density import ElectrostaticDensity, DensityResult
from repro.placement.nesterov import NesterovOptimizer
from repro.placement.initial import initial_placement
from repro.placement.objective import ObjectiveTerm, PlacementObjective
from repro.placement.global_placer import GlobalPlacer, PlacementConfig, PlacementHistory
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer
from repro.placement.detailed import DetailedPlacer

__all__ = [
    "hpwl_per_net",
    "total_hpwl",
    "WeightedAverageWirelength",
    "ElectrostaticDensity",
    "DensityResult",
    "NesterovOptimizer",
    "initial_placement",
    "ObjectiveTerm",
    "PlacementObjective",
    "GlobalPlacer",
    "PlacementConfig",
    "PlacementHistory",
    "AbacusLegalizer",
    "GreedyLegalizer",
    "DetailedPlacer",
]
