"""Structured findings emitted by the contract-lint rules.

A :class:`Finding` pins one contract violation to a file:line with the rule
id that produced it, a human-readable message, and a suppression hint (the
exact pragma that would silence it).  Findings survive pragma processing —
suppressed findings stay in the report with ``suppressed=True`` and the
pragma's ``reason`` attached, so ``--json`` output can diff the *complete*
picture across commits, not just the failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class Finding:
    """One contract violation at a specific source location."""

    file: str
    line: int
    rule: str
    message: str
    col: int = 0
    suppressed: bool = False
    reason: Optional[str] = None

    @property
    def hint(self) -> str:
        """The pragma that would suppress this finding (with a reason)."""
        return f"# contract: allow({self.rule}) reason=<why this is safe>"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.file}:{self.line}:{self.col}: [{self.rule}]{mark} {self.message}"


@dataclass
class LintReport:
    """Aggregate result of one contract-lint run."""

    findings: list = field(default_factory=list)
    files_scanned: int = 0
    paths: list = field(default_factory=list)

    @property
    def unsuppressed(self) -> list:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list:
        return [f for f in self.findings if f.suppressed]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "paths": list(self.paths),
            "files_scanned": self.files_scanned,
            "counts": {
                "total": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.as_dict() for f in self.findings],
        }
