"""Shared-memory parallel kernel engine (serial-exact sharded hot paths).

See :mod:`repro.parallel.engine` for the pool and runner interfaces and
:mod:`repro.parallel.kernels` for the shard kernels and the bit-exactness
contract they follow.
"""

from repro.parallel.engine import (
    KernelPool,
    KernelPoolError,
    SerialShardRunner,
    ShardBlock,
    get_kernel_pool,
    get_runner,
    resolve_worker_count,
    shutdown_kernel_pools,
    split_ranges,
)
from repro.parallel.kernels import kernel_names, register_kernel, run_kernel

__all__ = [
    "KernelPool",
    "KernelPoolError",
    "SerialShardRunner",
    "ShardBlock",
    "get_kernel_pool",
    "get_runner",
    "kernel_names",
    "register_kernel",
    "resolve_worker_count",
    "run_kernel",
    "shutdown_kernel_pools",
    "split_ranges",
]
