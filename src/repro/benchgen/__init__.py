"""Synthetic benchmark generation (ICCAD-2015 stand-in).

The ICCAD-2015 incremental timing-driven placement contest benchmarks
(superblue1..18) are not redistributable and are far beyond laptop scale, so
the experiments in this reproduction run on deterministic synthetic designs
produced by :func:`generate_circuit`.  The :data:`SB_MINI_SUITE` presets give
eight "superblue-like" mini designs with the structural properties that drive
the paper's findings: multi-stage register-to-register pipelines, a spread of
failing endpoints, shared combinational cones (path sharing), and a range of
fan-out distributions.
"""

from repro.benchgen.synthetic import CircuitSpec, generate_circuit
from repro.benchgen.suite import (
    CONGESTION_SUITE,
    SB_MINI_SUITE,
    available_design_names,
    benchmark_names,
    congestion_benchmark_names,
    load_benchmark,
    load_compiled,
)

__all__ = [
    "CircuitSpec",
    "generate_circuit",
    "CONGESTION_SUITE",
    "SB_MINI_SUITE",
    "available_design_names",
    "benchmark_names",
    "congestion_benchmark_names",
    "load_benchmark",
    "load_compiled",
]
