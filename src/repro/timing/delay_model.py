"""Vectorized delay models for cell arcs and wire (net) arcs.

Two cooperating models:

* :class:`WireRCModel` evaluates, for every net at once, the Elmore delay from
  the net driver to each sink and the total load capacitance the driver sees.
  It uses the star topology (every pin connected to the pin centroid through
  a wire segment with per-unit resistance/capacitance from the library), the
  same estimate the placement-time timer uses in DREAMPlace-style flows.
  For a uniform RC line the Elmore delay is independent of segmentation, so
  two-pin nets match the exact point-to-point formula
  ``delay = r*L * (c*L/2 + C_pin)`` — quadratic in length, which is what the
  paper's quadratic distance loss is designed to track.

* :class:`CellDelayModel` evaluates every cell arc's delay from the library
  characterization (``intrinsic + slope * load`` or a load lookup table)
  given the per-net loads computed by the wire model.

Both models are array-first: they read the design core's CSR connectivity
and the timing graph's flat arc characterization — no object traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.netlist.core import DesignCore, as_core
from repro.timing.graph import TimingGraph


@dataclass
class WireDelayResult:
    """Output of one wire-delay evaluation."""

    net_load: np.ndarray        # [num_nets] capacitance seen by each net driver
    sink_delay: np.ndarray      # [num_pins] Elmore delay from driver to this pin
    net_wirelength: np.ndarray  # [num_nets] estimated routed length (star)


@dataclass
class StackedWireDelayResult:
    """Wire delays for several corners at once (corner axis first)."""

    net_load: np.ndarray        # [num_corners, num_nets]
    sink_delay: np.ndarray      # [num_corners, num_pins]
    net_wirelength: np.ndarray  # [num_nets] (corner-independent geometry)

    def corner(self, index: int) -> WireDelayResult:
        return WireDelayResult(
            net_load=self.net_load[index],
            sink_delay=self.sink_delay[index],
            net_wirelength=self.net_wirelength,
        )


@dataclass
class _WireGeometry:
    """Corner-independent per-position quantities shared by all RC corners.

    Everything here depends only on pin positions and pin capacitances —
    never on the per-unit wire RC — so a multi-corner evaluation computes it
    once and reuses it for every corner's :meth:`WireRCModel._combine`.
    """

    csr_pins: np.ndarray        # selected CSR pin indices (net_mask applied)
    csr_net: np.ndarray         # net id per selected CSR entry
    cx: np.ndarray              # [num_nets] star-center x
    cy: np.ndarray              # [num_nets] star-center y
    seg_len: np.ndarray         # per selected CSR entry: Manhattan segment length
    pin_cap_sum: np.ndarray     # [num_nets] total pin capacitance
    net_wirelength: np.ndarray  # [num_nets] total star wirelength
    has_driver: np.ndarray      # [num_nets] bool
    driver_cap: np.ndarray      # [num_nets] driver pin capacitance (0 if none)
    driver_seg_len: np.ndarray  # [num_nets] driver-to-center segment length
    sink_pins: np.ndarray       # selected sink pin indices
    sink_nets: np.ndarray       # net id per selected sink
    sink_seg_len: np.ndarray    # sink-to-center segment length per selected sink


class WireRCModel:
    """Star-topology Elmore delay for every net, fully vectorized."""

    def __init__(
        self,
        design,
        *,
        resistance_per_unit: Optional[float] = None,
        capacitance_per_unit: Optional[float] = None,
    ) -> None:
        core: DesignCore = as_core(design)
        self.core = core
        self.resistance_per_unit = (
            core.wire_resistance_per_unit if resistance_per_unit is None else resistance_per_unit
        )
        self.capacitance_per_unit = (
            core.wire_capacitance_per_unit if capacitance_per_unit is None else capacitance_per_unit
        )
        self._num_nets = core.num_nets
        self._num_pins = core.num_pins
        # CSR pin ordering grouped by net (shared, cached on the core).
        self._csr_pins = core.net_pin_index
        self._csr_net = core.csr_net
        self._pin_cap = core.pin_capacitance
        self._pin_is_driver = core.pin_is_driver
        # Driver pin per net (-1 when the net is undriven).
        self._driver_pin = core.net_driver_pin
        self._pin_count = np.bincount(self._csr_net, minlength=self._num_nets)

    @property
    def num_nets(self) -> int:
        return self._num_nets

    def pins_of_nets(self, net_mask: np.ndarray) -> np.ndarray:
        """Pin indices belonging to any net selected by ``net_mask``."""
        return self._csr_pins[net_mask[self._csr_net]]

    def evaluate(
        self,
        pin_x: np.ndarray,
        pin_y: np.ndarray,
        *,
        net_mask: Optional[np.ndarray] = None,
        rc_scale: float = 1.0,
    ) -> WireDelayResult:
        """Compute loads and Elmore sink delays for pin positions ``(pin_x, pin_y)``.

        With ``net_mask`` only the selected nets are evaluated (the returned
        arrays are full-size but meaningful only for masked nets and their
        pins); per-net values are bitwise identical to an unmasked pass, which
        is what makes the incremental STA mode exact.  ``rc_scale`` scales
        both per-unit resistance and capacitance (PVT corner derating); the
        identity scale multiplies by exactly 1.0 and therefore changes no bit.
        """
        return self._combine(self._geometry(pin_x, pin_y, net_mask), rc_scale)

    def evaluate_stacked(
        self,
        pin_x: np.ndarray,
        pin_y: np.ndarray,
        rc_scales,
        *,
        net_mask: Optional[np.ndarray] = None,
    ) -> StackedWireDelayResult:
        """Evaluate several RC corners at once, sharing the geometry pass.

        Each corner's per-net values are bitwise identical to a standalone
        :meth:`evaluate` call with the same ``rc_scale`` — the per-corner
        combine executes the same arithmetic on the shared geometry.
        """
        geometry = self._geometry(pin_x, pin_y, net_mask)
        per_corner = [self._combine(geometry, float(scale)) for scale in rc_scales]
        return StackedWireDelayResult(
            net_load=np.stack([res.net_load for res in per_corner]),
            sink_delay=np.stack([res.sink_delay for res in per_corner]),
            net_wirelength=geometry.net_wirelength,
        )

    def _geometry(
        self,
        pin_x: np.ndarray,
        pin_y: np.ndarray,
        net_mask: Optional[np.ndarray],
    ) -> _WireGeometry:
        """Position-dependent, RC-independent quantities (the bincount pass)."""
        csr_pins = self._csr_pins
        csr_net = self._csr_net
        num_nets = self._num_nets
        if net_mask is not None:
            selected = net_mask[csr_net]
            csr_pins = csr_pins[selected]
            csr_net = csr_net[selected]

        # Star center: centroid of the net's pins.
        count = np.maximum(self._pin_count, 1)
        cx = np.bincount(csr_net, weights=pin_x[csr_pins], minlength=num_nets) / count
        cy = np.bincount(csr_net, weights=pin_y[csr_pins], minlength=num_nets) / count

        # Manhattan length of each pin's segment to the star center.
        seg_len = np.abs(pin_x[csr_pins] - cx[csr_net]) + np.abs(pin_y[csr_pins] - cy[csr_net])

        pin_cap_sum = np.bincount(
            csr_net, weights=self._pin_cap[csr_pins], minlength=num_nets
        )
        net_wirelength = np.bincount(csr_net, weights=seg_len, minlength=num_nets)

        driver = self._driver_pin
        has_driver = driver >= 0
        driver_cap = np.where(has_driver, self._pin_cap[np.maximum(driver, 0)], 0.0)
        driver_seg_len = np.where(
            has_driver,
            np.abs(pin_x[np.maximum(driver, 0)] - cx) + np.abs(pin_y[np.maximum(driver, 0)] - cy),
            0.0,
        )

        sink_mask = ~self._pin_is_driver[csr_pins]
        return _WireGeometry(
            csr_pins=csr_pins,
            csr_net=csr_net,
            cx=cx,
            cy=cy,
            seg_len=seg_len,
            pin_cap_sum=pin_cap_sum,
            net_wirelength=net_wirelength,
            has_driver=has_driver,
            driver_cap=driver_cap,
            driver_seg_len=driver_seg_len,
            sink_pins=csr_pins[sink_mask],
            sink_nets=csr_net[sink_mask],
            sink_seg_len=seg_len[sink_mask],
        )

    def _combine(self, geometry: _WireGeometry, rc_scale: float) -> WireDelayResult:
        """Fold one corner's per-unit RC into the shared geometry."""
        r = self.resistance_per_unit * rc_scale
        c = self.capacitance_per_unit * rc_scale
        csr_net = geometry.csr_net
        num_nets = self._num_nets
        seg_cap = c * geometry.seg_len

        # Total wire capacitance + pin capacitance per net.
        wire_cap = np.bincount(csr_net, weights=seg_cap, minlength=num_nets)
        total_cap = wire_cap + geometry.pin_cap_sum

        # Load seen by the driver: everything except its own pin capacitance.
        net_load = np.where(
            geometry.has_driver, total_cap - geometry.driver_cap, total_cap
        )
        # Degenerate single-pin nets drive nothing.
        net_load = np.where(self._pin_count >= 2, net_load, 0.0)

        # Elmore delay components:
        #   driver segment:  R_drv * (total_cap - node_cap(driver))
        #   sink segment:    R_sink * (c*L_sink/2 + C_pin(sink))
        driver_seg_len = geometry.driver_seg_len
        driver_node_cap = c * driver_seg_len * 0.5 + geometry.driver_cap
        driver_stage_delay = r * driver_seg_len * np.maximum(total_cap - driver_node_cap, 0.0)
        driver_stage_delay = np.where(self._pin_count >= 2, driver_stage_delay, 0.0)

        sink_delay = np.zeros(self._num_pins, dtype=np.float64)
        sink_pins = geometry.sink_pins
        sink_seg_len = geometry.sink_seg_len
        sink_own_delay = r * sink_seg_len * (c * sink_seg_len * 0.5 + self._pin_cap[sink_pins])
        sink_delay[sink_pins] = driver_stage_delay[geometry.sink_nets] + sink_own_delay

        return WireDelayResult(
            net_load=net_load,
            sink_delay=sink_delay,
            net_wirelength=geometry.net_wirelength,
        )


class CellDelayModel:
    """Vectorized evaluation of cell-arc delays for a timing graph.

    Consumes the graph's precomputed flat characterization
    (``cell_arc_index`` / ``cell_intrinsic`` / ``cell_slope`` /
    ``cell_table_specs``) — no per-arc object iteration.
    """

    def __init__(self, graph: TimingGraph) -> None:
        self.graph = graph
        core = graph.design.core
        self._cell_arc_indices = graph.cell_arc_index
        self._intrinsic = graph.cell_intrinsic
        self._slope = graph.cell_slope
        self._table_arcs = graph.cell_table_specs
        # The net driven by each cell arc's output pin determines its load.
        if self._cell_arc_indices.size:
            to_pins = graph.arc_to[self._cell_arc_indices]
            self._driven_net = core.pin_net[to_pins]
        else:
            self._driven_net = np.zeros(0, dtype=np.int64)

    def evaluate(self, net_load: np.ndarray, *, derate: float = 1.0) -> np.ndarray:
        """Return a delay for every arc of the graph (net arcs left at 0).

        ``derate`` multiplies every cell-arc delay (PVT corner derating); the
        identity derate multiplies by exactly 1.0 and changes no bit.
        """
        delays = np.zeros(self.graph.num_arcs, dtype=np.float64)
        if self._cell_arc_indices.size == 0:
            return delays
        load = np.where(self._driven_net >= 0, net_load[np.maximum(self._driven_net, 0)], 0.0)
        arc_delay = self._intrinsic + self._slope * load
        for local_idx, spec in self._table_arcs:
            arc_delay[local_idx] = spec.delay(float(load[local_idx]))
        delays[self._cell_arc_indices] = arc_delay * derate
        return delays

    def update_subset(
        self,
        delays: np.ndarray,
        net_load: np.ndarray,
        net_mask: np.ndarray,
        *,
        derate: float = 1.0,
    ) -> np.ndarray:
        """Refresh in ``delays`` the cell arcs driving a masked net.

        Returns the (graph-level) indices of the arcs that were recomputed.
        Values match :meth:`evaluate` exactly for the touched arcs.
        """
        if self._cell_arc_indices.size == 0:
            return np.zeros(0, dtype=np.int64)
        dirty_local = (self._driven_net >= 0) & net_mask[np.maximum(self._driven_net, 0)]
        local_idx = np.nonzero(dirty_local)[0]
        if local_idx.size == 0:
            return np.zeros(0, dtype=np.int64)
        load = net_load[self._driven_net[local_idx]]
        arc_delay = self._intrinsic[local_idx] + self._slope[local_idx] * load
        for table_local, spec in self._table_arcs:
            if dirty_local[table_local]:
                position = int(np.searchsorted(local_idx, table_local))
                arc_delay[position] = spec.delay(
                    float(net_load[self._driven_net[table_local]])
                )
        arc_indices = self._cell_arc_indices[local_idx]
        delays[arc_indices] = arc_delay * derate
        return arc_indices
