"""The array-first design core and the CompiledDesign snapshot path.

Covers the PR 2 acceptance criteria: view semantics between objects and core
arrays, pickle round-trip equality, snapshot size versus the object graph,
bit-identical flow results through the snapshot path, and thread-versus-
process batch parity when shipping compiled designs.
"""

import pickle

import numpy as np
import pytest

from repro.benchgen import generate_circuit, load_benchmark, load_compiled
from repro.flow.batch import BatchJob, run_batch
from repro.flow.presets import build_flow, preset_names
from repro.netlist import (
    CompiledDesign,
    SharedDesignPack,
    compile_design,
)

FAST = dict(
    max_iterations=60,
    timing_start_iteration=20,
    min_timing_iterations=20,
    timing_update_interval=10,
)


def _fast_overrides(preset):
    if preset == "dreamplace":
        return {"max_iterations": 60}
    if preset == "routability":
        return {"max_iterations": 60, "refine_iterations": 30}
    if preset == "routability-gp":
        # Shrink the feedback cadences so both in-loop weightings actually
        # fire inside the 60-iteration fast run.
        return {
            "max_iterations": 60, "refine_iterations": 30,
            "congestion_start": 20, "congestion_interval": 10,
            "timing_start": 30, "timing_interval": 10,
        }
    return dict(FAST)


class TestViewSemantics:
    def test_instance_write_visible_in_core(self, tiny_design):
        core = tiny_design.core
        inst = tiny_design.instance("u1")
        inst.x = 77.5
        assert core.x[inst.index] == 77.5

    def test_core_write_visible_in_instance(self, tiny_design):
        core = tiny_design.core
        inst = tiny_design.instance("u2")
        core.x[inst.index] = 33.25
        core.y[inst.index] = 12.0
        assert inst.x == 33.25
        assert inst.y == 12.0

    def test_set_positions_updates_views(self, tiny_design):
        x, y = tiny_design.positions()
        x[tiny_design.instance("u1").index] = 61.0
        tiny_design.set_positions(x, y)
        assert tiny_design.instance("u1").x == 61.0
        assert tiny_design.core.x[tiny_design.instance("u1").index] == 61.0

    def test_positions_returns_copies(self, tiny_design):
        x, _ = tiny_design.positions()
        x[:] = -1.0
        assert tiny_design.instance("u1").x != -1.0

    def test_net_weight_views_core(self, tiny_design):
        core = tiny_design.core
        net = tiny_design.net("n1")
        net.weight = 3.5
        assert core.net_weight[net.index] == 3.5
        core.net_weight[net.index] = 1.25
        assert net.weight == 1.25

    def test_fixed_frozen_after_finalize(self, tiny_design):
        with pytest.raises(RuntimeError):
            tiny_design.instance("u1").fixed = True

    def test_pin_position_matches_core_kernel(self, tiny_design):
        px, py = tiny_design.core.pin_positions()
        pin = tiny_design.pin("u1/a")
        assert (px[pin.index], py[pin.index]) == pin.position()


class TestRowsCache:
    def test_rows_cached_until_floorplan_changes(self, tiny_design):
        rows1 = tiny_design.rows()
        assert tiny_design.rows() is rows1  # cached object
        tiny_design.row_height = tiny_design.row_height * 2
        rows2 = tiny_design.rows()
        assert rows2 is not rows1
        assert len(rows2) == len(rows1) // 2

    def test_die_change_invalidates_rows(self, tiny_design):
        rows1 = tiny_design.rows()
        die = tiny_design.die
        tiny_design.die = (die.xl, die.yl, die.xh, die.yh + 24)
        assert len(tiny_design.rows()) == len(rows1) + 2

    def test_core_set_floorplan_accepts_tuple(self, tiny_design):
        """A tuple die must be normalized to Rect; a raw tuple would poison
        the rows-cache key on the next rows() call."""
        core = tiny_design.core
        rows1 = core.rows()
        die = core.die
        core.set_floorplan(die=(die.xl, die.yl, die.xh, die.yh + 12))
        rows2 = core.rows()
        assert len(rows2) == len(rows1) + 1
        assert core.rows() is rows2  # re-cached under the new key

    def test_row_resize_after_finalize_reflected_everywhere(self, tiny_design):
        """Design-level floorplan mutation after finalize() must invalidate
        the core rows cache and keep design.rows()/core.rows() in agreement
        (regression: a stale cache here silently mis-legalizes)."""
        tiny_design.rows()
        tiny_design.site_width = tiny_design.site_width * 2
        tiny_design.row_height = tiny_design.row_height * 2
        design_rows = tiny_design.rows()
        assert design_rows is tiny_design.core.rows()
        assert design_rows[0].site_width == tiny_design.site_width
        assert design_rows[0].height == tiny_design.row_height

    def test_movable_masks_unaffected_by_floorplan_mutation(self, tiny_design):
        """Floorplan changes must not disturb the frozen movable masks."""
        core = tiny_design.core
        mask_before = core.movable_mask.copy()
        index_before = core.movable_index.copy()
        die = core.die
        core.set_floorplan(die=(die.xl, die.yl, die.xh + 48, die.yh + 48))
        np.testing.assert_array_equal(core.movable_mask, mask_before)
        np.testing.assert_array_equal(core.movable_index, index_before)


class TestSnapshotRoundTrip:
    @pytest.fixture(scope="class")
    def design(self):
        return load_benchmark("sb_mini_18", scale=0.5)

    @pytest.fixture(scope="class")
    def compiled(self, design):
        return compile_design(design)

    def test_pickle_round_trip_is_exact(self, design, compiled):
        restored = pickle.loads(pickle.dumps(compiled))
        assert isinstance(restored, CompiledDesign)
        rebuilt = restored.to_design()
        assert rebuilt.name == design.name
        assert [i.name for i in rebuilt.instances] == [i.name for i in design.instances]
        assert [n.name for n in rebuilt.nets] == [n.name for n in design.nets]
        for field in (
            "x",
            "y",
            "inst_width",
            "inst_fixed",
            "inst_is_port",
            "pin_instance",
            "pin_offset_x",
            "pin_capacitance",
            "pin_is_driver",
            "net_pin_offsets",
            "net_pin_index",
            "net_weight",
        ):
            np.testing.assert_array_equal(
                getattr(rebuilt.core, field), getattr(design.core, field), err_msg=field
            )

    def test_snapshot_at_least_10x_smaller_than_object_graph(self, design, compiled):
        compiled_size = len(pickle.dumps(compiled))
        design_size = len(pickle.dumps(design))
        assert compiled_size * 10 <= design_size, (
            f"CompiledDesign pickles to {compiled_size}B, full design to "
            f"{design_size}B - ratio {design_size / compiled_size:.1f}x < 10x"
        )

    def test_shared_memory_round_trip(self, design, compiled):
        pack = SharedDesignPack(compiled)
        try:
            handle = pickle.loads(pickle.dumps(pack.handle))
            loaded = handle.load()
            try:
                rebuilt = loaded.compiled.to_design()
                np.testing.assert_array_equal(rebuilt.core.x, design.core.x)
                np.testing.assert_array_equal(
                    rebuilt.core.net_pin_index, design.core.net_pin_index
                )
            finally:
                loaded.close()
        finally:
            pack.close()

    def test_load_compiled_matches_load_benchmark(self):
        rebuilt = load_compiled("sb_mini_4", scale=0.3).to_design()
        fresh = load_benchmark("sb_mini_4", scale=0.3)
        np.testing.assert_array_equal(rebuilt.core.x, fresh.core.x)
        np.testing.assert_array_equal(
            rebuilt.core.net_pin_index, fresh.core.net_pin_index
        )
        assert rebuilt.summary() == fresh.summary()


class TestFlowParity:
    @pytest.mark.parametrize("preset", sorted(preset_names()))
    def test_all_presets_bit_identical_through_snapshot(self, preset):
        """Running a preset on a snapshot-rebuilt design reproduces the
        direct run bit for bit (placement x/y and STA metrics)."""
        overrides = _fast_overrides(preset)
        direct = build_flow(preset, **overrides).run(
            load_benchmark("sb_mini_18", scale=0.4), seed=0
        )
        snapshot = build_flow(preset, **overrides).run(
            load_compiled("sb_mini_18", scale=0.4).to_design(), seed=0
        )
        np.testing.assert_array_equal(snapshot.x, direct.x)
        np.testing.assert_array_equal(snapshot.y, direct.y)
        assert snapshot.evaluation.hpwl == direct.evaluation.hpwl
        assert snapshot.evaluation.tns == direct.evaluation.tns
        assert snapshot.evaluation.wns == direct.evaluation.wns

    def test_generated_design_round_trips_exactly(self, small_spec):
        direct = generate_circuit(small_spec)
        rebuilt = compile_design(generate_circuit(small_spec)).to_design()
        np.testing.assert_array_equal(rebuilt.core.x, direct.core.x)
        np.testing.assert_array_equal(rebuilt.core.pin_net, direct.core.pin_net)


def _summaries(report):
    keyed = {}
    for item in report.items:
        assert item.ok, item.error
        summary = dict(item.summary)
        summary.pop("runtime_sec", None)
        keyed[item.label] = summary
    return keyed


class TestBatchShipParity:
    def _jobs(self):
        return [
            BatchJob(
                design=name,
                preset="dreamplace",
                seed=0,
                scale=0.2,
                overrides={"max_iterations": 60},
            )
            for name in ["sb_mini_18", "sb_mini_4", "sb_mini_16", "sb_mini_1"]
        ]

    def test_thread_vs_process_compiled_parity(self):
        thread = run_batch(
            self._jobs(), max_workers=4, executor="thread", ship="compiled"
        )
        process = run_batch(
            self._jobs(), max_workers=2, executor="process", ship="compiled"
        )
        assert thread.ship == "compiled"
        assert _summaries(thread) == _summaries(process)

    def test_shared_memory_ship_matches_generate(self):
        generate = run_batch(self._jobs(), max_workers=4, ship="generate")
        shared = run_batch(self._jobs(), max_workers=4, ship="shared")
        assert _summaries(generate) == _summaries(shared)

    def test_unknown_ship_mode_rejected(self):
        with pytest.raises(ValueError, match="ship"):
            run_batch(self._jobs()[:1], ship="carrier_pigeon")


def _shm_entries():
    """Names currently present under /dev/shm (empty set if unsupported)."""
    from pathlib import Path

    root = Path("/dev/shm")
    if not root.exists():  # pragma: no cover - non-Linux
        return set()
    return {entry.name for entry in root.iterdir()}


class TestSharedDesignPackLifecycle:
    """No /dev/shm segment may outlive its batch, on any failure path."""

    @pytest.fixture()
    def compiled(self):
        return compile_design(load_benchmark("sb_mini_18", scale=0.2))

    def test_context_manager_closes_and_unlinks(self, compiled):
        before = _shm_entries()
        with SharedDesignPack(compiled) as pack:
            created = _shm_entries() - before
            assert len(created) == 1  # the segment exists while open
            assert pack.handle.shm_name.lstrip("/") in created
        assert _shm_entries() == before
        pack.close()  # idempotent after __exit__

    def test_init_failure_leaves_no_segment(self, compiled, monkeypatch):
        import repro.netlist.compiled as compiled_mod

        before = _shm_entries()

        def boom(*args, **kwargs):
            raise RuntimeError("injected frombuffer failure")

        monkeypatch.setattr(compiled_mod.np, "frombuffer", boom)
        with pytest.raises(RuntimeError, match="injected"):
            SharedDesignPack(compiled)
        assert _shm_entries() == before

    def test_failing_stage_does_not_leak_segments(self):
        """A worker raising mid-batch must not leak the shipped segments."""
        import repro.flow.presets as presets_mod

        class _BoomStage:
            name = "boom"

            def run(self, ctx):
                raise RuntimeError("injected stage failure")

        class _BoomConfig:
            seed = 0  # the batch runner always overrides the seed field

        presets_mod.register_preset(
            presets_mod.FlowPreset(
                name="__boom__",
                description="failing stage (lifecycle test)",
                config_factory=_BoomConfig,
                stage_factory=lambda config: [_BoomStage()],
            )
        )
        try:
            before = _shm_entries()
            jobs = [
                BatchJob(design="sb_mini_18", preset="__boom__", scale=0.2),
                BatchJob(design="sb_mini_4", preset="__boom__", scale=0.2),
            ]
            report = run_batch(jobs, max_workers=2, executor="thread", ship="shared")
            assert report.num_failed == 2
            assert "injected stage failure" in report.items[0].error
            assert _shm_entries() == before
        finally:
            del presets_mod._PRESETS["__boom__"]

    def test_payload_build_failure_closes_earlier_packs(self):
        """A benchmark failing to build mid-payload must close packs already
        created for earlier jobs."""
        before = _shm_entries()
        jobs = [
            BatchJob(design="sb_mini_18", preset="dreamplace", scale=0.2),
            BatchJob(design="__no_such_design__"),
        ]
        with pytest.raises(KeyError, match="Unknown benchmark"):
            run_batch(jobs, max_workers=2, ship="shared")
        assert _shm_entries() == before


class TestCornerSpecsInSnapshot:
    def test_corner_specs_survive_pickle_and_rebuild(self):
        from repro.timing import resolve_corners

        design = load_benchmark("sb_mini_18", scale=0.2)
        design.corners = "fast,slow"
        snapshot = pickle.loads(pickle.dumps(compile_design(design)))
        expected = resolve_corners("fast,slow")
        assert snapshot.corners == expected
        rebuilt = snapshot.to_design()
        assert rebuilt.corners == expected

    def test_no_corners_stays_none(self):
        design = load_benchmark("sb_mini_18", scale=0.2)
        snapshot = compile_design(design)
        assert snapshot.corners is None
        assert snapshot.to_design().corners is None

    def test_shared_handle_payload_carries_corners(self):
        from repro.timing import resolve_corners

        design = load_benchmark("sb_mini_18", scale=0.2)
        design.corners = "fast,typ,slow"
        with SharedDesignPack(compile_design(design)) as pack:
            handle = pickle.loads(pickle.dumps(pack.handle))
            loaded = handle.load()
            try:
                assert loaded.compiled.corners == resolve_corners("fast,typ,slow")
                rebuilt = loaded.compiled.to_design()
                assert rebuilt.corners == resolve_corners("fast,typ,slow")
            finally:
                loaded.close()
