#!/usr/bin/env python3
"""Build a design by hand, run the full flow, and export LEF/DEF/Verilog/SDC.

Demonstrates the library's file I/O path (Fig. 1's ".lef/.def/.v/.lib/.sdc
Input -> ... -> .def Output"): a small pipelined circuit is assembled with the
netlist API, constrained, placed through the ``efficient_tdp`` flow preset,
and written to disk; the DEF is parsed back and re-evaluated to show the
round trip is lossless.

Run:  python examples/custom_design_flow.py [output_dir]
"""

import os
import sys

from repro.evaluation import evaluate_placement
from repro.flow import build_flow
from repro.netlist import Design, make_generic_library
from repro.netlist.parsers import parse_def
from repro.netlist.writers import write_def, write_lef, write_sdc, write_verilog


def build_design(library) -> Design:
    """An 8-stage inverter/buffer pipeline between two register banks."""
    design = Design("pipeline8", die=(0, 0, 400, 408), library=library)
    design.add_port("clk", "input", x=0, y=0)
    design.add_port("din", "input", x=0, y=200)
    design.add_port("dout", "output", x=400, y=200)

    clock_net = design.add_net("clknet")
    design.connect(clock_net, "clk")

    previous_net = design.add_net("n_in")
    design.connect(previous_net, "din")

    launch = design.add_instance("ff_in", "DFF_X1", x=10, y=192)
    design.connect(clock_net, launch, "ck")
    design.connect(previous_net, launch, "d")
    previous_net = design.add_net("n_stage0")
    design.connect(previous_net, launch, "q")

    for stage in range(8):
        cell = "INV_X1" if stage % 2 == 0 else "BUF_X1"
        gate = design.add_instance(f"u{stage}", cell, x=200, y=192)
        design.connect(previous_net, gate, "a")
        previous_net = design.add_net(f"n_stage{stage + 1}")
        design.connect(previous_net, gate, "o")

    capture = design.add_instance("ff_out", "DFF_X1", x=380, y=192)
    design.connect(clock_net, capture, "ck")
    design.connect(previous_net, capture, "d")
    out_net = design.add_net("n_out")
    design.connect(out_net, capture, "q")
    design.connect(out_net, "dout")

    design.clock_period = 400.0
    design.clock_port = "clk"
    design.input_delays = {"din": 20.0}
    design.output_delays = {"dout": 20.0}
    return design.finalize()


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "custom_flow_output"
    os.makedirs(out_dir, exist_ok=True)

    library = make_generic_library()
    design = build_design(library)
    print("design:", design.summary())

    runner = build_flow(
        "efficient_tdp",
        max_iterations=300,
        timing_start_iteration=80,
        min_timing_iterations=80,
    )
    result = runner.run(design)
    print("placed:", result.summary())

    files = {
        "pipeline8.lef": write_lef(library),
        "pipeline8.v": write_verilog(design),
        "pipeline8.sdc": write_sdc(design),
        "pipeline8_placed.def": write_def(design),
    }
    for filename, text in files.items():
        path = os.path.join(out_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote", path)

    # Round-trip the DEF and confirm the evaluation is unchanged.
    with open(os.path.join(out_dir, "pipeline8_placed.def"), encoding="utf-8") as handle:
        reparsed = parse_def(handle.read(), library)
    reparsed.clock_period = design.clock_period
    reparsed.clock_port = design.clock_port
    reparsed.input_delays = dict(design.input_delays)
    reparsed.output_delays = dict(design.output_delays)
    report = evaluate_placement(reparsed)
    print("re-evaluated from DEF:", {k: round(v, 1) if isinstance(v, float) else v
                                     for k, v in report.as_dict().items()})


if __name__ == "__main__":
    main()
