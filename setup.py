"""Package metadata and the ``repro`` console entry point."""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.dirname(os.path.abspath(__file__))


def _long_description() -> str:
    path = os.path.join(_HERE, "README.md")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    return ""


def _version() -> str:
    """Single source of truth: __version__ in src/repro/__init__.py."""
    with open(os.path.join(_HERE, "src", "repro", "__init__.py"), encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-efficient-tdp",
    version=_version(),
    description=(
        "Reproduction of 'Timing-Driven Global Placement by Efficient Critical "
        "Path Extraction' (DATE 2025): composable placement flows, vectorized "
        "STA with incremental updates, and a concurrent multi-design runner"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "test": ["pytest>=7.0", "pytest-benchmark>=4.0"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.flow.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
