"""raw-timing fixture: the sanctioned spellings pass untouched."""

import time

def clock():
    return 0.0

def span(name):
    return name

def measure():
    start = clock()
    with span("stage.work"):
        time.sleep(0)  # sleeping is not measurement
    return clock() - start

def reference_to_the_function_is_fine():
    return time.perf_counter  # attribute read, not a call

def waived():
    # contract: allow(raw-timing) reason=calibrating the clock itself
    return time.perf_counter()
