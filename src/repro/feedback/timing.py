"""Timing signals as placement-feedback components.

Two shapes:

* :class:`StrategyFeedback` adapts the existing
  :class:`~repro.flow.stages.TimingStrategyBase` strategies (path
  extraction + pin pairs, momentum net weighting, smoothed pin weighting,
  record-only) to the feedback protocol **without changing their math**:
  the strategy still runs STA, applies its own weight/pin-pair update, and
  resets momentum exactly as it did behind the legacy raw callback — which
  is what keeps the four pre-existing presets bit-identical.
* :class:`TimingCriticalityWeighting` is the *composable* timing signal:
  it proposes a per-net multiplier ``1 + max_boost * criticality`` (the
  Eq. 5 criticality: each net's share of the worst negative slack) and
  leaves momentum, clamping, and application to the shared
  :class:`~repro.feedback.composer.WeightComposer`, so it can be merged
  with congestion weighting (or any future signal) instead of owning the
  weight vector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.feedback.base import FeedbackUpdate, PlacementFeedback
from repro.timing.mcmm import MultiCornerResult
from repro.weighting.net_weighting import net_worst_slack

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.placement.global_placer import GlobalPlacer

__all__ = ["StrategyFeedback", "TimingCriticalityWeighting"]


class StrategyFeedback(PlacementFeedback):
    """A legacy timing strategy riding the feedback scheduler unchanged.

    ``update`` delegates to the strategy's ``on_timing_iteration`` (which
    applies its own weights/pairs and momentum reset) and reports the
    resulting TNS/WNS as trajectory metrics; it never proposes weights to
    the composer, because the strategy already applied them itself.
    """

    # The strategy handles its own momentum reset; the scheduler must not
    # add a second one.
    resets_momentum = False

    def __init__(self, strategy: Any, ctx: Any, *, name: Optional[str] = None) -> None:
        self.strategy = strategy
        self.ctx = ctx
        self.name = name if name is not None else type(strategy).__name__

    def update(
        self,
        placer: "GlobalPlacer",
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> Optional[FeedbackUpdate]:
        self.strategy.on_timing_iteration(placer, self.ctx, iteration, x, y)
        result = self.ctx.sta_result
        metrics = {}
        if result is not None:
            metrics = {"tns": float(result.tns), "wns": float(result.wns)}
        return FeedbackUpdate(metrics=metrics)


class TimingCriticalityWeighting(PlacementFeedback):
    """Composable timing-criticality net-weight proposal (momentum-free).

    Runs STA on the current positions, folds multi-corner results to their
    pessimistic merge, and proposes ``1 + max_boost * criticality`` per net,
    where criticality is the net's worst pin slack over the WNS (clipped to
    ``[0, 1]``; nets with non-negative or unconstrained slack propose 1).
    The shared composer applies momentum and clamping, so with this as the
    only proposing feedback the composed weights follow exactly the
    DREAMPlace-4.0-style momentum recurrence.
    """

    name = "timing"

    def __init__(
        self,
        *,
        max_boost: float = 0.75,
        criticality_threshold: float = 0.0,
        sta_incremental: bool = False,
        sta_move_tolerance: float = 0.0,
    ) -> None:
        if max_boost < 0.0:
            raise ValueError("max_boost must be non-negative")
        if not 0.0 <= criticality_threshold < 1.0:
            raise ValueError("criticality_threshold must be within [0, 1)")
        self.max_boost = float(max_boost)
        # Nets below the threshold propose exactly 1: composing timing with
        # congestion is a fight over the same HPWL budget, and boosting the
        # long tail of mildly-critical nets spends that budget without
        # moving WNS.  0 keeps the full Eq. 5 criticality profile.
        self.criticality_threshold = float(criticality_threshold)
        self.sta_incremental = bool(sta_incremental)
        self.sta_move_tolerance = float(sta_move_tolerance)
        self.ctx: Any = None
        self.sta = None

    def prepare(self, ctx: Any) -> None:
        self.ctx = ctx
        with ctx.profiler.section("io"):
            self.sta = ctx.require_sta(
                incremental=self.sta_incremental,
                move_tolerance=self.sta_move_tolerance,
            )

    def update(
        self,
        placer: "GlobalPlacer",
        iteration: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> Optional[FeedbackUpdate]:
        if self.sta is None:
            raise RuntimeError(
                "TimingCriticalityWeighting.update before prepare(): the "
                "feedback needs the flow's shared STA engine"
            )
        ctx = self.ctx
        with ctx.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
        ctx.sta_result = result
        merged = result.merged if isinstance(result, MultiCornerResult) else result
        with ctx.profiler.section("weighting"):
            worst = net_worst_slack(ctx.design, merged)
            wns = min(merged.wns, -1e-12)
            criticality = np.clip(worst / wns, 0.0, 1.0)
            criticality[~np.isfinite(worst)] = 0.0
            if self.criticality_threshold > 0.0:
                criticality[criticality < self.criticality_threshold] = 0.0
            proposal = 1.0 + self.max_boost * criticality
        placer.history.record_extra("tns", iteration, result.tns)
        placer.history.record_extra("wns", iteration, result.wns)
        return FeedbackUpdate(
            proposal=proposal,
            metrics={"tns": float(result.tns), "wns": float(result.wns)},
        )
