"""DREAMPlace 4.0-style baseline: momentum-based net weighting.

Every ``m`` iterations after the timing-start iteration, the flow runs STA,
derives each net's criticality from its worst pin slack, and updates the net
weights with momentum (Eq. 5 of the paper; see
:class:`repro.weighting.MomentumNetWeighting`).  The heavier nets then pull
their cells together through the ordinary weighted-wirelength gradient.

This class also serves as the paper's "w/o Path Extraction" ablation arm,
which replaces path-level extraction with exactly this pin-level,
momentum-weighted scheme.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.dreamplace import BaselineResult
from repro.evaluation.evaluator import Evaluator
from repro.netlist.design import Design
from repro.placement.global_placer import GlobalPlacer, PlacementConfig
from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import STAEngine
from repro.utils.profiling import RuntimeProfiler
from repro.weighting.net_weighting import MomentumNetWeighting


@dataclass
class DreamPlace4Config:
    """Schedule and weighting knobs of the net-weighting baseline."""

    max_iterations: int = 450
    timing_start_iteration: int = 150
    min_timing_iterations: int = 120
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    timing_update_interval: int = 15
    # The weighting aggressiveness is calibrated so the baseline lands in the
    # operating envelope DREAMPlace 4.0 itself reports (~6% HPWL overhead on
    # the contest designs).  Larger boosts trade HPWL for TNS aggressively on
    # the small synthetic suite; see EXPERIMENTS.md for that sensitivity.
    momentum_decay: float = 0.75
    max_boost: float = 0.75
    max_weight: float = 6.0
    verbose: bool = False

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            min_iterations=self.timing_start_iteration + self.min_timing_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
        )


class DreamPlace4Baseline:
    """Timing-driven placement through momentum-guided net weighting."""

    def __init__(
        self,
        design: Design,
        config: Optional[DreamPlace4Config] = None,
        *,
        constraints: Optional[TimingConstraints] = None,
    ) -> None:
        self.design = design
        self.config = config if config is not None else DreamPlace4Config()
        self.constraints = (
            constraints if constraints is not None else TimingConstraints.from_design(design)
        )
        self.profiler = RuntimeProfiler()
        with self.profiler.section("io"):
            self.sta = STAEngine(design, self.constraints)
        self.weighting = MomentumNetWeighting(
            decay=self.config.momentum_decay,
            max_boost=self.config.max_boost,
            max_weight=self.config.max_weight,
        )

    def _timing_callback(
        self, placer: GlobalPlacer, iteration: int, x: np.ndarray, y: np.ndarray
    ) -> None:
        cfg = self.config
        if iteration < cfg.timing_start_iteration:
            return
        if (iteration - cfg.timing_start_iteration) % cfg.timing_update_interval != 0:
            return
        with self.profiler.section("timing_analysis"):
            result = self.sta.update_timing(x, y)
        with self.profiler.section("weighting"):
            new_weights = self.weighting.update(self.design, result, placer.net_weights)
            placer.set_net_weights(new_weights)
        placer.reset_optimizer_momentum()
        placer.history.record_extra("tns", iteration, result.tns)
        placer.history.record_extra("wns", iteration, result.wns)

    def run(self) -> BaselineResult:
        start = time.perf_counter()
        placer = GlobalPlacer(
            self.design, self.config.placement_config(), profiler=self.profiler
        )
        placer.add_callback(self._timing_callback)
        placement = placer.run()
        x, y = placement.x, placement.y
        with self.profiler.section("legalization"):
            legal = AbacusLegalizer(self.design).legalize(x, y)
            if not legal.success:
                legal = GreedyLegalizer(self.design).legalize(x, y)
            x, y = legal.x, legal.y
            self.design.set_positions(x, y)
        with self.profiler.section("io"):
            evaluation = Evaluator(self.design, self.constraints).evaluate(x, y)
        return BaselineResult(
            x=x,
            y=y,
            evaluation=evaluation,
            placement=placement,
            history=placement.history,
            profiler=self.profiler,
            runtime_seconds=time.perf_counter() - start,
        )
