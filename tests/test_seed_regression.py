"""Pre-PR-4 regression anchors: routability must not perturb existing flows.

The goldens below were recorded from the repository state *before* the
routability subsystem landed (PR 3 head, commit b0983c6).  With routability
disabled — i.e. simply not using the new preset/stages — every existing
preset and the synthetic generator must reproduce them:

* the four original presets' evaluation metrics and position checksums on
  ``sb_mini_18`` (fast settings, seed 0) — verified bitwise against the old
  code at recording time; asserted here with a tight relative tolerance so
  a BLAS/FFT library swap does not flake CI while any semantic change
  (different RNG stream, different default code path) still fails loudly;
* SHA-256 checksums over the generator's output arrays — these involve only
  elementwise IEEE arithmetic and the versioned-stable NumPy ``Generator``
  stream, so they are asserted exactly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.benchgen import load_benchmark
from repro.flow.presets import build_flow
from repro.obs import start_tracing, stop_tracing

_FAST = dict(
    max_iterations=60,
    timing_start_iteration=20,
    min_timing_iterations=20,
    timing_update_interval=10,
)

# Recorded from commit b0983c6 (pre-PR-4) on sb_mini_18 scale 0.4, seed 0.
_PRESET_GOLDEN = {
    "efficient_tdp": {
        "hpwl": 24473.491025641026,
        "tns": -573.4202874532051,
        "wns": -70.80919125079498,
        "x_sum": 24258.46153846154,
        "y_sum": 25971.46153846154,
        "x_dot": 3580267.3846153845,
    },
    "dreamplace": {
        "hpwl": 23378.92692307692,
        "tns": -399.60016925352295,
        "wns": -58.640564283402796,
        "x_sum": 25181.46153846154,
        "y_sum": 25575.46153846154,
        "x_dot": 3829118.3846153845,
    },
    "dreamplace4": {
        "hpwl": 24473.491025641026,
        "tns": -573.4202874532051,
        "wns": -70.80919125079498,
        "x_sum": 24258.46153846154,
        "y_sum": 25971.46153846154,
        "x_dot": 3580267.3846153845,
    },
    "differentiable_tdp": {
        "hpwl": 24473.491025641026,
        "tns": -573.4202874532051,
        "wns": -70.80919125079498,
        "x_sum": 24258.46153846154,
        "y_sum": 25971.46153846154,
        "x_dot": 3580267.3846153845,
    },
}

# SHA-256 over (x, y, inst_cell_id, net_pin_offsets, net_pin_index, pin_net,
# clock_period, die) of the freshly generated design (pre-PR-4 values).
_GENERATOR_GOLDEN = {
    "sb_mini_18": "37855458d855090892ec667471bed8b79aad93fea273dc978cf7e59e5c6210d9",
    "sb_mini_10": "e94bd82a40ca074410f30be8c510b9b0089f29cf1e1418694f3983956c33c673",
    "sb_mini_1": "3b1e2db3720e7bf2c71601c76c830982024989c31e569bc2f3dbbd1efb0a7930",
}


def _design_checksum(name: str) -> str:
    design = load_benchmark(name)
    core = design.core
    digest = hashlib.sha256()
    for array in (
        core.x,
        core.y,
        core.inst_cell_id,
        core.net_pin_offsets,
        core.net_pin_index,
        core.pin_net,
    ):
        digest.update(array.tobytes())
    digest.update(repr(design.clock_period).encode())
    die = core.die
    digest.update(repr((die.xl, die.yl, die.xh, die.yh)).encode())
    return digest.hexdigest()


class TestGeneratorBitExact:
    @pytest.mark.parametrize("name", sorted(_GENERATOR_GOLDEN))
    def test_generated_design_matches_pre_pr4_checksum(self, name):
        assert _design_checksum(name) == _GENERATOR_GOLDEN[name]


class TestPresetRegression:
    @pytest.mark.parametrize("preset", sorted(_PRESET_GOLDEN))
    def test_preset_matches_pre_pr4_golden(self, preset):
        overrides = dict(_FAST) if preset != "dreamplace" else {"max_iterations": 60}
        design = load_benchmark("sb_mini_18", scale=0.4)
        result = build_flow(preset, **overrides).run(design, seed=0)
        golden = _PRESET_GOLDEN[preset]
        ev = result.evaluation
        assert ev.hpwl == pytest.approx(golden["hpwl"], rel=1e-9)
        assert ev.tns == pytest.approx(golden["tns"], rel=1e-9)
        assert ev.wns == pytest.approx(golden["wns"], rel=1e-9)
        assert float(np.sum(result.x)) == pytest.approx(golden["x_sum"], rel=1e-9)
        assert float(np.sum(result.y)) == pytest.approx(golden["y_sum"], rel=1e-9)
        assert float(np.dot(result.x, np.arange(result.x.size))) == pytest.approx(
            golden["x_dot"], rel=1e-9
        )
        # Congestion metrics must stay absent unless explicitly requested.
        assert ev.congestion_peak_overflow is None


class TestPresetRegressionTraced:
    """The same goldens with the tracing subsystem active.

    Tracing performs no array arithmetic, so enabling it must leave every
    preset's metrics and position checksums untouched (the observability
    PR's bit-exactness contract).
    """

    @pytest.mark.parametrize("preset", sorted(_PRESET_GOLDEN))
    def test_preset_golden_unchanged_under_tracing(self, preset):
        overrides = dict(_FAST) if preset != "dreamplace" else {"max_iterations": 60}
        design = load_benchmark("sb_mini_18", scale=0.4)
        stop_tracing()
        tracer = start_tracing()
        try:
            result = build_flow(preset, **overrides).run(design, seed=0)
        finally:
            stop_tracing()
        golden = _PRESET_GOLDEN[preset]
        ev = result.evaluation
        assert ev.hpwl == pytest.approx(golden["hpwl"], rel=1e-9)
        assert ev.tns == pytest.approx(golden["tns"], rel=1e-9)
        assert ev.wns == pytest.approx(golden["wns"], rel=1e-9)
        assert float(np.sum(result.x)) == pytest.approx(golden["x_sum"], rel=1e-9)
        assert float(np.sum(result.y)) == pytest.approx(golden["y_sum"], rel=1e-9)
        assert float(np.dot(result.x, np.arange(result.x.size))) == pytest.approx(
            golden["x_dot"], rel=1e-9
        )
        # The run actually traced: the GP loop produced iteration spans.
        assert "gp.iteration" in tracer.metrics()["spans"]
