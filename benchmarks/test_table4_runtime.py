"""Table IV — total runtime comparison.

Reports, per design, the wall-clock runtime of DREAMPlace (wirelength only),
DREAMPlace 4.0 (net weighting), and Efficient-TDP (ours), plus the average
ratio normalized by ours.  The paper's qualitative claim is that the
wirelength-only flow is by far the fastest (no timer in the loop) and that
the proposed flow's timing machinery is competitive with the net-weighting
flow's.
"""

from __future__ import annotations


from benchmarks.conftest import SUITE, save_json, save_text
from repro.evaluation import average_ratio, format_table

METHODS = ["DREAMPlace", "DREAMPlace 4.0", "Efficient-TDP (ours)"]


def test_table4_runtime(suite_results, benchmark):
    runtime = {m: {} for m in METHODS}

    def collect():
        for design, per_method in suite_results.items():
            for method in METHODS:
                runtime[method][design] = per_method[method].runtime_seconds
        return runtime

    benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for design in SUITE:
        rows.append(
            [design] + [round(runtime[m][design], 2) for m in METHODS]
        )
    ratios = average_ratio(runtime, "Efficient-TDP (ours)")
    rows.append(["Average Ratio"] + [round(ratios[m], 2) for m in METHODS])

    table = format_table(
        ["Benchmark"] + METHODS,
        rows,
        title="Table IV — runtime (seconds)",
    )
    print("\n" + table)
    save_text("table4_runtime.txt", table)
    save_json("table4_runtime.json", {"runtime_sec": runtime, "average_ratio": ratios})

    # Wirelength-only DREAMPlace must be the fastest on average (no timer).
    assert ratios["DREAMPlace"] <= ratios["Efficient-TDP (ours)"]
    assert ratios["DREAMPlace"] <= ratios["DREAMPlace 4.0"]
