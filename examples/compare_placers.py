#!/usr/bin/env python3
"""Compare all four placement flows on a chosen benchmark (Table II, one row).

Runs every registered flow preset — DREAMPlace, DREAMPlace 4.0 (momentum net
weighting), Differentiable-TDP (smoothed path-free attraction), and
Efficient-TDP (ours) — on one sb_mini design through the batch runner, and
prints TNS / WNS / HPWL / runtime side by side.  The flows run sequentially
(``max_workers=1``) so the runtime column stays comparable method-to-method;
use ``repro compare`` when wall-clock matters more than the comparison.

Run:  python examples/compare_placers.py [benchmark_name]
      (equivalent CLI:  repro compare sb_mini_1)
"""

import sys

from repro.benchgen import benchmark_names
from repro.flow import BatchJob, preset_names, run_batch


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sb_mini_1"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from {benchmark_names()}")

    jobs = [
        BatchJob(
            design=name,
            preset=preset,
            seed=1 if preset == "dreamplace" else 0,
            overrides={"max_iterations": 450},
            label=preset,
        )
        for preset in preset_names()
    ]
    report = run_batch(jobs, max_workers=1)
    print(report.format_table())


if __name__ == "__main__":
    main()
