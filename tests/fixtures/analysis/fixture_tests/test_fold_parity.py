"""Fixture test naming both halves of the refparity_ok pair."""

import importlib.util
from pathlib import Path

import numpy as np


def _load_refparity_ok():
    path = Path(__file__).resolve().parent.parent / "refparity_ok.py"
    spec = importlib.util.spec_from_file_location("analysis_refparity_ok", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fold_matches_reference_fold():
    module = _load_refparity_ok()
    values = np.arange(5, dtype=np.float64)
    assert module.fold(values) == module._reference_fold(values)
