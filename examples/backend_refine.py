#!/usr/bin/env python3
"""Back-end walkthrough: Abacus legalization + delta-HPWL detailed placement.

Takes one benchmark design from a seed-0 initial placement through the
array-backed back-end that PR 10 introduced:

1. **Abacus legalization** — the flat-stack cluster collapse with the
   ``legalize_rowband`` candidate kernel, compared against the kept
   object-based ``_reference_legalize`` twin (bitwise, and the wall-clock
   ratio is printed).  With ``--kernel-workers > 0`` the row-band candidate
   search shards across the shared-memory kernel pool and is compared
   bitwise against the serial run.
2. **Detailed placement** — the delta-HPWL adjacent-swap engine versus the
   full-recompute ``_reference_refine`` twin on a capped candidate budget
   (the reference pays a whole-design ``hpwl_per_net`` per candidate), then
   an uncapped delta-path refinement to show the real HPWL win.
3. **Flow integration** — the same back-end as ``FlowRunner`` stages
   (``legalize`` + ``detailed_place``), reading the accepted-swap count and
   the legalizer's row-overflow diagnostics from the flow metadata.

Run:  python examples/backend_refine.py [--scale 0.1] [--kernel-workers 2]
      (defaults stay smoke-sized; --design sb_xl_1 --scale 1.0 reproduces
      the BENCH_core back-end rows)
"""

import argparse
import time

import numpy as np

from repro.benchgen.suite import load_benchmark
from repro.netlist.core import as_core
from repro.placement.detailed import DetailedPlacer
from repro.placement.initial import initial_placement
from repro.placement.legalization.abacus import AbacusLegalizer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--design", default="sb_xl_1")
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="cell-count multiplier (default 0.1 = 10k cells; 1.0 = full XL)",
    )
    parser.add_argument(
        "--kernel-workers", type=int, default=2,
        help="kernel-pool workers for the row-band candidate search "
        "(0 = serial)",
    )
    parser.add_argument(
        "--max-candidates", type=int, default=2000,
        help="candidate cap for the delta-vs-reference detailed pair "
        "(the reference recomputes every net per candidate)",
    )
    args = parser.parse_args()

    design = load_benchmark(args.design, scale=args.scale)
    core = as_core(design)
    print(
        f"{args.design} @ scale {args.scale}: {design.num_instances} instances, "
        f"{design.num_nets} nets, {design.num_pins} pins"
    )
    cx, cy = initial_placement(design, seed=0)

    # 1. Abacus legalization: array path vs object-based reference, bitwise.
    legalizer = AbacusLegalizer(design)
    t0 = time.perf_counter()
    legal = legalizer.legalize(cx, cy)
    array_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    reference = legalizer._reference_legalize(cx, cy)
    reference_wall = time.perf_counter() - t0
    exact = np.array_equal(legal.x, reference.x) and np.array_equal(
        legal.y, reference.y
    )
    print(
        f"legalize: {array_wall * 1e3:.1f}ms array vs "
        f"{reference_wall * 1e3:.1f}ms reference "
        f"({reference_wall / array_wall:.1f}x); bitwise equal: {exact}"
    )
    print(
        f"  displacement total {legal.total_displacement:.1f} / max "
        f"{legal.max_displacement:.2f}; unplaced {legal.num_failed}; "
        f"overfull rows {legal.num_overfull_rows}"
    )
    if not exact:
        raise SystemExit("array-backed legalization diverged from reference")

    if args.kernel_workers > 0:
        sharded = AbacusLegalizer(design, workers=args.kernel_workers)
        t0 = time.perf_counter()
        pooled = sharded.legalize(cx, cy)
        pooled_wall = time.perf_counter() - t0
        exact = np.array_equal(pooled.x, legal.x) and np.array_equal(
            pooled.y, legal.y
        )
        print(
            f"legalize ({args.kernel_workers} workers): "
            f"{pooled_wall * 1e3:.1f}ms; bitwise equal: {exact}"
        )
        if not exact:
            raise SystemExit("sharded row-band legalization diverged from serial")

    # 2. Detailed placement: delta-HPWL engine vs full-recompute reference
    # on the same capped budget, then the uncapped delta pass.
    placer = DetailedPlacer(design)
    t0 = time.perf_counter()
    dx, dy, accepted = placer.refine(
        legal.x, legal.y, max_candidates=args.max_candidates
    )
    delta_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    rx, ry, ref_accepted = placer._reference_refine(
        legal.x, legal.y, max_candidates=args.max_candidates
    )
    reference_wall = time.perf_counter() - t0
    exact = (
        np.array_equal(dx, rx)
        and np.array_equal(dy, ry)
        and accepted == ref_accepted
    )
    print(
        f"detailed ({args.max_candidates} candidates): "
        f"{delta_wall * 1e3:.1f}ms delta vs {reference_wall * 1e3:.1f}ms "
        f"reference ({reference_wall / delta_wall:.1f}x); "
        f"bitwise equal: {exact}"
    )
    if not exact:
        raise SystemExit("delta-HPWL refine diverged from reference")

    before_hpwl = core.total_hpwl(legal.x, legal.y)
    t0 = time.perf_counter()
    fx, fy, full_accepted = placer.refine(legal.x, legal.y)
    full_wall = time.perf_counter() - t0
    after_hpwl = core.total_hpwl(fx, fy)
    print(
        f"detailed (uncapped): {full_wall * 1e3:.1f}ms, "
        f"{full_accepted} accepted swaps; HPWL {before_hpwl:.0f} -> "
        f"{after_hpwl:.0f} ({(1.0 - after_hpwl / before_hpwl):.2%} better)"
    )

    # 3. The same back-end as flow stages, with the legalizer's overflow
    # diagnostics and the swap count surfaced through the flow metadata.
    from repro.flow.runner import FlowRunner
    from repro.flow.stages import DetailedPlaceStage, LegalizeStage

    runner = FlowRunner(
        [LegalizeStage(), DetailedPlaceStage()],
        kernel_workers=args.kernel_workers,
    )
    core.set_positions(cx, cy)
    result = runner.run(design)
    legalize_meta = result.context.metadata.get("legalization", {})
    detailed_meta = result.context.metadata.get("detailed_place", {})
    print(
        f"flow stages: legalize engine={legalize_meta.get('engine')} "
        f"overfull_rows={legalize_meta.get('num_overfull_rows')} "
        f"failed={legalize_meta.get('num_failed')}; "
        f"detailed accepted_swaps={detailed_meta.get('accepted_swaps')}"
    )

    from repro.parallel import shutdown_kernel_pools

    shutdown_kernel_pools()


if __name__ == "__main__":
    main()
