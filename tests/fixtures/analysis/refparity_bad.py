"""Fixture: orphaned and untested _reference_* implementations."""

import numpy as np


def _reference_orphan(values):
    # No fast-path twin named ``orphan`` or ``_orphan`` exists.
    return float(np.sum(values))


def _reference_untested(values):
    # Twin exists below, but no fixture test names both functions.
    return float(np.sum(values))


def untested(values):
    return float(np.sum(values))
