"""Geometric primitives shared by the netlist, placement, and timing packages.

The placement engine works on flat NumPy arrays, but a small number of
geometric abstractions (rectangles, bounding boxes) keep the higher level
code readable.  All coordinates are in database units (DBU); the library
does not enforce a particular physical unit so long as the design is
self-consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle given by its lower-left and upper-right corners."""

    xl: float
    yl: float
    xh: float
    yh: float

    def __post_init__(self) -> None:
        if self.xh < self.xl or self.yh < self.yl:
            raise ValueError(
                f"Malformed rectangle: ({self.xl}, {self.yl}, {self.xh}, {self.yh})"
            )

    @property
    def width(self) -> float:
        return self.xh - self.xl

    @property
    def height(self) -> float:
        return self.yh - self.yl

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.xl + self.xh), 0.5 * (self.yl + self.yh))

    def contains_point(self, x: float, y: float, *, tol: float = 0.0) -> bool:
        """Return True if (x, y) lies inside the rectangle (inclusive)."""
        return (
            self.xl - tol <= x <= self.xh + tol
            and self.yl - tol <= y <= self.yh + tol
        )

    def contains_rect(self, other: "Rect", *, tol: float = 0.0) -> bool:
        """Return True if ``other`` lies entirely inside this rectangle."""
        return (
            self.xl - tol <= other.xl
            and self.yl - tol <= other.yl
            and other.xh <= self.xh + tol
            and other.yh <= self.yh + tol
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True if the two rectangles overlap (touching edges count)."""
        return not (
            other.xl > self.xh
            or other.xh < self.xl
            or other.yl > self.yh
            or other.yh < self.yl
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlapping rectangle, or None when disjoint."""
        xl = max(self.xl, other.xl)
        yl = max(self.yl, other.yl)
        xh = min(self.xh, other.xh)
        yh = min(self.yh, other.yh)
        if xh < xl or yh < yl:
            return None
        return Rect(xl, yl, xh, yh)

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(self.xl - margin, self.yl - margin, self.xh + margin, self.yh + margin)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xl, self.yl, self.xh, self.yh)


class BoundingBox:
    """Incrementally built bounding box over a stream of points."""

    __slots__ = ("xl", "yl", "xh", "yh", "_count")

    def __init__(self) -> None:
        self.xl = math.inf
        self.yl = math.inf
        self.xh = -math.inf
        self.yh = -math.inf
        self._count = 0

    def add(self, x: float, y: float) -> None:
        if x < self.xl:
            self.xl = x
        if x > self.xh:
            self.xh = x
        if y < self.yl:
            self.yl = y
        if y > self.yh:
            self.yh = y
        self._count += 1

    def add_points(self, points: Iterable[Tuple[float, float]]) -> None:
        for x, y in points:
            self.add(x, y)

    @property
    def empty(self) -> bool:
        return self._count == 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter wirelength of the box; 0 for fewer than two points."""
        if self._count < 2:
            return 0.0
        return (self.xh - self.xl) + (self.yh - self.yl)

    def to_rect(self) -> Rect:
        if self.empty:
            raise ValueError("Cannot convert an empty bounding box to a Rect")
        return Rect(self.xl, self.yl, self.xh, self.yh)

    def __iter__(self) -> Iterator[float]:
        return iter((self.xl, self.yl, self.xh, self.yh))


def manhattan_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Rectilinear (L1) distance between two points."""
    return abs(x1 - x2) + abs(y1 - y2)


def euclidean_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean (L2) distance between two points."""
    return math.hypot(x1 - x2, y1 - y2)


def squared_distance(x1: float, y1: float, x2: float, y2: float) -> float:
    """Squared Euclidean distance; the paper's quadratic pin-to-pin metric."""
    dx = x1 - x2
    dy = y1 - y2
    return dx * dx + dy * dy
