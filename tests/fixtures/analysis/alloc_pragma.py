"""Fixture: pragma suppression — one valid waiver, one reasonless pragma."""

import numpy as np


def steady_state(fn):
    return fn


@steady_state
def suppressed_fallback(arena, n):
    if arena is not None:
        return arena.array("buf", n)
    # contract: allow(alloc) reason=fallback when no arena is attached
    return np.empty(n, dtype=np.float64)


@steady_state
def reasonless_pragma(n):
    return np.zeros(n, dtype=np.float64)  # contract: allow(alloc)
