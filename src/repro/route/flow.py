"""The routability flow preset configurations and retrofit helpers.

Two presets live here:

* ``routability`` — the PR-4 shape: congestion acts *after* placement via
  the cell-inflation repair loop::

      global_place -> routability_repair -> legalize -> congestion -> evaluate

* ``routability-gp`` — congestion (and timing) act *inside* the placement
  loop as composed net-weighting feedbacks, with the inflation loop demoted
  to post-place cleanup::

      feedback_weight -> global_place -> routability_repair -> legalize
          -> congestion -> evaluate

:func:`add_routability` retrofits the inflation loop onto any already-built
stage list (the CLI's ``--routability`` flag); :func:`add_congestion_
weighting` retrofits the in-loop congestion net weighting (the CLI's
``--congestion-weighting`` flag) by inserting a
:class:`~repro.flow.stages.FeedbackWeightStage` before the first
global-placement stage.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.feedback.base import FeedbackCadence
from repro.feedback.composer import WeightComposerConfig
from repro.feedback.congestion import CongestionNetWeighting
from repro.placement.global_placer import PlacementConfig
from repro.route.inflation import InflationConfig
from repro.route.rudy import CongestionConfig

__all__ = [
    "RoutabilityConfig",
    "RoutabilityGPConfig",
    "add_congestion_weighting",
    "add_routability",
]


@dataclass
class RoutabilityConfig:
    """Configuration of the ``routability`` preset.

    Placement knobs mirror :class:`PlacementConfig`; the congestion and
    inflation knobs are grouped in their own sub-configs so ``--set`` style
    overrides address the flat, flow-level fields.
    """

    # Placement engine schedule.
    max_iterations: int = 450
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    verbose: bool = False
    # Kernel-pool workers for the density / congestion / STA hot paths
    # (0 = serial; see repro.parallel for the bit-exactness guarantee).
    kernel_workers: int = 0
    # Record placement history every N iterations (1 = every iteration;
    # the optimization trajectory is bitwise unaffected).
    history_every: int = 1
    # Inflation loop.  The flat fields exist so ``--set`` style overrides can
    # address the common knobs; ``None`` means "defer to self.inflation",
    # so an explicitly provided InflationConfig is honored in full.
    inflate: bool = True
    inflation_rounds: Optional[int] = None
    overflow_target: Optional[float] = None
    max_hpwl_growth: Optional[float] = None
    refine_iterations: int = 150
    # Congestion model.
    congestion: CongestionConfig = field(default_factory=CongestionConfig)
    inflation: InflationConfig = field(default_factory=InflationConfig)
    # MCMM analysis corners for the evaluation stage (None = single corner).
    corners: Optional[object] = None
    # Post-processing.
    legalize: bool = True

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
            kernel_workers=self.kernel_workers,
            history_every=self.history_every,
        )

    def congestion_config(self) -> CongestionConfig:
        """The congestion sub-config with ``kernel_workers`` threaded in.

        An explicit ``congestion.workers`` wins; the flat ``kernel_workers``
        knob only fills the default so one CLI flag drives every hot path.
        """
        if self.kernel_workers and not self.congestion.workers:
            return dataclasses.replace(self.congestion, workers=self.kernel_workers)
        return self.congestion

    def inflation_config(self) -> InflationConfig:
        """The sub-config with any flat-field overrides applied on top."""
        overrides = {
            key: value
            for key, value in (
                ("max_rounds", self.inflation_rounds),
                ("overflow_target", self.overflow_target),
                ("max_hpwl_growth", self.max_hpwl_growth),
            )
            if value is not None
        }
        cfg = dataclasses.replace(self.inflation, **overrides)
        cfg.validate()
        return cfg


@dataclass
class RoutabilityGPConfig:
    """Configuration of the ``routability-gp`` preset.

    Composes two in-loop weighting feedbacks — congestion (RUDY overflow
    under each net's bbox) and timing criticality — through one
    :class:`~repro.feedback.composer.WeightComposer`, then runs the PR-4
    inflation loop as post-place cleanup.  Flat fields keep every knob
    addressable by the CLI's ``--set key=value``.
    """

    # Placement engine schedule.
    max_iterations: int = 450
    stop_overflow: float = 0.08
    target_density: float = 1.0
    seed: int = 0
    verbose: bool = False
    # Kernel-pool workers for the density / congestion / STA hot paths
    # (0 = serial; see repro.parallel for the bit-exactness guarantee).
    kernel_workers: int = 0
    # Record placement history every N iterations (1 = every iteration;
    # the optimization trajectory is bitwise unaffected).
    history_every: int = 1
    # Congestion net weighting: cadence (warmup / every-K / cooldown) and
    # proposal shape.
    congestion_start: int = 100
    congestion_interval: int = 10
    congestion_end: Optional[int] = None
    congestion_max_boost: float = 0.6
    congestion_saturation: float = 0.4
    # Timing criticality weighting (composed with congestion).  Defaults are
    # deliberately gentler than a pure timing-driven flow: composed with
    # congestion, both signals spend the same HPWL budget, and the
    # acceptance experiment (tests/test_feedback.py) gates the composed
    # preset against the inflation-only flow at <= 2% legalized HPWL cost.
    timing: bool = True
    timing_start: int = 150
    timing_interval: int = 15
    timing_max_boost: float = 0.3
    timing_criticality_threshold: float = 0.25
    # Shared composer dynamics.
    momentum_decay: float = 0.75
    max_weight: float = 6.0
    max_target_boost: Optional[float] = 4.0
    # Post-place inflation cleanup (the PR-4 loop).
    inflate: bool = True
    inflation_rounds: Optional[int] = None
    overflow_target: Optional[float] = None
    max_hpwl_growth: Optional[float] = None
    refine_iterations: int = 150
    # Congestion model shared by weighting, repair, and reporting.
    congestion: CongestionConfig = field(default_factory=CongestionConfig)
    inflation: InflationConfig = field(default_factory=InflationConfig)
    # MCMM analysis corners (None = single corner).
    corners: Optional[object] = None
    # Post-processing.
    legalize: bool = True

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            max_iterations=self.max_iterations,
            stop_overflow=self.stop_overflow,
            target_density=self.target_density,
            seed=self.seed,
            verbose=self.verbose,
            kernel_workers=self.kernel_workers,
            history_every=self.history_every,
        )

    def congestion_config(self) -> CongestionConfig:
        """The congestion sub-config with ``kernel_workers`` threaded in.

        An explicit ``congestion.workers`` wins; the flat ``kernel_workers``
        knob only fills the default so one CLI flag drives every hot path.
        """
        if self.kernel_workers and not self.congestion.workers:
            return dataclasses.replace(self.congestion, workers=self.kernel_workers)
        return self.congestion

    def inflation_config(self) -> InflationConfig:
        overrides = {
            key: value
            for key, value in (
                ("max_rounds", self.inflation_rounds),
                ("overflow_target", self.overflow_target),
                ("max_hpwl_growth", self.max_hpwl_growth),
            )
            if value is not None
        }
        cfg = dataclasses.replace(self.inflation, **overrides)
        cfg.validate()
        return cfg

    def composer_config(self) -> WeightComposerConfig:
        cfg = WeightComposerConfig(
            momentum_decay=self.momentum_decay,
            max_weight=self.max_weight,
            max_target_boost=self.max_target_boost,
        )
        cfg.validate()
        return cfg

    def feedback_slots(self) -> List[tuple]:
        """The ``(feedback, cadence)`` pairs the preset schedules."""
        from repro.feedback.timing import TimingCriticalityWeighting

        slots: List[tuple] = [
            (
                CongestionNetWeighting(
                    self.congestion_config(),
                    max_boost=self.congestion_max_boost,
                    saturation_overflow=self.congestion_saturation,
                ),
                FeedbackCadence(
                    start=self.congestion_start,
                    interval=self.congestion_interval,
                    end=self.congestion_end,
                ),
            )
        ]
        if self.timing:
            slots.append(
                (
                    TimingCriticalityWeighting(
                        max_boost=self.timing_max_boost,
                        criticality_threshold=self.timing_criticality_threshold,
                    ),
                    FeedbackCadence(
                        start=self.timing_start, interval=self.timing_interval
                    ),
                )
            )
        return slots


def add_congestion_weighting(
    stages: List[object],
    *,
    congestion: Optional[CongestionConfig] = None,
    max_boost: float = 1.0,
    saturation_overflow: float = 0.5,
    start: int = 100,
    interval: int = 10,
    composer: Optional[WeightComposerConfig] = None,
) -> List[object]:
    """Retrofit in-loop congestion net weighting onto an existing stage list.

    Returns a new stage list with a
    :class:`~repro.flow.stages.FeedbackWeightStage` scheduling a
    :class:`~repro.feedback.congestion.CongestionNetWeighting` inserted
    before the first global-placement stage (raises if the flow has none).
    The original list is not modified.
    """
    from repro.flow.stages import (
        FeedbackWeightStage,
        GlobalPlaceStage,
        MomentumNetWeightStrategy,
        TimingWeightStage,
    )

    place_positions = [
        i for i, stage in enumerate(stages) if isinstance(stage, GlobalPlaceStage)
    ]
    if not place_positions:
        raise ValueError(
            "--congestion-weighting requires a flow with a global_place "
            "stage (the weighting feedback runs inside the placement loop)"
        )
    for stage in stages:
        # A legacy strategy that *applies* net weights itself (momentum net
        # weighting) and the composer would silently clobber each other's
        # weight vector; refuse instead of corrupting both signals.  The
        # pin-pair strategies attach objective terms, not net weights, so
        # they compose fine.
        if isinstance(stage, TimingWeightStage) and isinstance(
            stage.strategy, MomentumNetWeightStrategy
        ):
            raise ValueError(
                "--congestion-weighting cannot compose with the legacy "
                "momentum net-weighting strategy (both own the net-weight "
                "vector and would overwrite each other); use the "
                "routability-gp preset, which composes timing criticality "
                "and congestion through one WeightComposer"
            )
    weighting = FeedbackWeightStage(
        [
            (
                CongestionNetWeighting(
                    congestion,
                    max_boost=max_boost,
                    saturation_overflow=saturation_overflow,
                ),
                FeedbackCadence(start=start, interval=interval),
            )
        ],
        composer=composer,
    )
    out: List[object] = list(stages)
    out.insert(place_positions[0], weighting)
    return out


def add_routability(
    stages: List[object],
    *,
    congestion: Optional[CongestionConfig] = None,
    inflation: Optional[InflationConfig] = None,
    refine_iterations: int = 150,
) -> List[object]:
    """Retrofit congestion awareness onto an existing stage list.

    Returns a new stage list: a routability-repair stage is inserted after
    the last global-placement stage (raises if the flow has none), a
    congestion-report stage is appended after legalization (or after repair
    when the flow does not legalize), and any evaluation stage is switched
    to congestion reporting.
    """
    from repro.flow.stages import (
        CongestionStage,
        EvaluateStage,
        GlobalPlaceStage,
        LegalizeStage,
        RoutabilityRepairStage,
    )

    place_positions = [
        i for i, stage in enumerate(stages) if isinstance(stage, GlobalPlaceStage)
    ]
    if not place_positions:
        raise ValueError(
            "--routability requires a flow with a global_place stage "
            "(the inflation loop re-runs global placement)"
        )
    repair = RoutabilityRepairStage(
        congestion=congestion,
        inflation=inflation,
        refine_iterations=refine_iterations,
    )
    out: List[object] = list(stages)
    out.insert(place_positions[-1] + 1, repair)

    legalize_positions = [
        i for i, stage in enumerate(out) if isinstance(stage, LegalizeStage)
    ]
    report_at = (
        legalize_positions[-1] + 1
        if legalize_positions
        else out.index(repair) + 1
    )
    out.insert(report_at, CongestionStage(config=congestion))
    # Switch evaluation to congestion reporting on *copies*: the caller's
    # original stage list must keep scoring exactly as before.
    for index, stage in enumerate(out):
        if isinstance(stage, EvaluateStage):
            scored = copy.copy(stage)
            scored.congestion = congestion if congestion is not None else True
            out[index] = scored
    return out
