"""Fig. 3 — optimizing one critical path with different distance losses.

The paper visualizes the most critical path of a coarse placement optimized
to convergence under the HPWL, linear-Euclidean, and quadratic losses, and
reports the resulting path slack.  This benchmark regenerates the series:
slack before optimization and slack after each loss, plus the path geometry
statistics (total length and the longest single segment) that explain why the
quadratic loss wins (it equalizes segment lengths instead of letting one
segment stay very long).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_json, save_text
from repro.baselines import DreamPlaceBaseline
from repro.benchgen import load_benchmark
from repro.core import SinglePathOptimizer
from repro.evaluation import format_table
from repro.placement import PlacementConfig


@pytest.fixture(scope="module")
def coarse_design():
    # The paper uses superblue16 for this figure; sb_mini_16 is its stand-in.
    design = load_benchmark("sb_mini_16")
    DreamPlaceBaseline(design, PlacementConfig(max_iterations=200, seed=1)).run()
    return design


def _segment_stats(optimizer, path, positions):
    x, y = positions
    graph = optimizer.engine.graph
    px, py = optimizer.design.pin_positions(x, y)
    lengths = [
        abs(px[i] - px[j]) + abs(py[i] - py[j]) for i, j in path.pin_pairs(graph)
    ]
    return float(sum(lengths)), float(max(lengths)) if lengths else 0.0


def test_fig3_loss_comparison(coarse_design, benchmark):
    optimizer = SinglePathOptimizer(coarse_design)
    path = optimizer.worst_path()

    results = benchmark.pedantic(
        lambda: optimizer.compare_losses(max_iterations=250), rounds=1, iterations=1
    )

    rows = [["before", round(results[0].slack_before, 1), "-", "-"]]
    payload = {"before_slack": results[0].slack_before, "losses": {}}
    for outcome in results:
        total_len, max_seg = _segment_stats(optimizer, path, outcome.positions)
        rows.append(
            [outcome.loss_name, round(outcome.slack_after, 1), round(total_len, 1), round(max_seg, 1)]
        )
        payload["losses"][outcome.loss_name] = {
            "slack_after": outcome.slack_after,
            "path_length_after": outcome.path_length_after,
            "longest_segment": max_seg,
            "iterations": outcome.iterations,
        }

    table = format_table(
        ["Loss", "Path slack (ps)", "Path length", "Longest segment"],
        rows,
        title="Fig. 3 — single critical path optimized with different losses (sb_mini_16)",
    )
    print("\n" + table)
    save_text("fig3_loss_comparison.txt", table)
    save_json("fig3_loss_comparison.json", payload)

    by_name = {r.loss_name: r for r in results}
    # Geometric claim of Fig. 3 (this is what reproduces at sb_mini scale):
    # the quadratic loss equalizes segment lengths, so its longest segment and
    # total path length are no larger than the direction-only losses'.
    _, quad_max = _segment_stats(optimizer, path, by_name["quadratic"].positions)
    quad_len, _ = _segment_stats(optimizer, path, by_name["quadratic"].positions)
    _, lin_max = _segment_stats(optimizer, path, by_name["linear"].positions)
    lin_len, _ = _segment_stats(optimizer, path, by_name["linear"].positions)
    assert quad_max <= lin_max + 1e-6
    assert quad_len <= lin_len + 1e-6
    # Slack claim: at the sb_mini die scale, net Elmore delays are negligible
    # next to load-dependent cell delays, so the per-path slack ordering of the
    # paper's Fig. 3 does NOT reproduce here (see EXPERIMENTS.md).  The series
    # is still reported above; only sanity (finiteness) is asserted.
    for outcome in results:
        assert outcome.slack_after == outcome.slack_after  # not NaN
        assert outcome.iterations > 0
