"""Routability subsystem: RUDY maps, inflation loop, flow integration.

Covers the PR 4 acceptance criteria:

* the vectorized RUDY map equals a naive per-net loop reference on random
  designs (hypothesis property);
* with routability disabled the existing presets are bit-identical to the
  recorded pre-PR-4 goldens (seed regression anchors);
* with routability enabled on the congestion-stressed design, peak overflow
  drops >= 30% versus the baseline flow at <= 2% HPWL cost.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import (
    CONGESTION_SUITE,
    CircuitSpec,
    available_design_names,
    generate_circuit,
    load_benchmark,
)
from repro.evaluation.evaluator import Evaluator
from repro.flow.presets import build_flow, build_stages, get_preset
from repro.flow.runner import FlowRunner
from repro.flow.stage import create_stage
from repro.flow.stages import CongestionStage, EvaluateStage, RoutabilityRepairStage
from repro.placement.density import ElectrostaticDensity
from repro.placement.initial import initial_placement
from repro.route import (
    CellInflation,
    CongestionConfig,
    CongestionEstimator,
    InflationConfig,
    estimate_congestion,
    run_inflation_loop,
)
from repro.route.flow import add_routability


# ----------------------------------------------------------------------
# Naive reference implementation (per-net Python loop)
# ----------------------------------------------------------------------
def naive_rudy(design, x, y, config: CongestionConfig):
    """Reference RUDY maps built one net (and one pin) at a time."""
    est = CongestionEstimator(design, config)  # reuse grid geometry only
    core = design.core
    die = core.die
    nbx, nby = est.num_bins_x, est.num_bins_y
    demand_h = np.zeros((nbx, nby))
    demand_v = np.zeros((nbx, nby))
    pin_density = np.zeros((nbx, nby))

    pin_x, pin_y = core.pin_positions(x, y)
    for e in range(core.num_nets):
        pins = core.net_pins(e)
        if pins.size < 2 or pins.size > config.max_net_degree:
            continue
        px, py = pin_x[pins], pin_y[pins]
        xmin, xmax = px.min(), px.max()
        ymin, ymax = py.min(), py.max()
        ix0 = int(np.clip(np.floor((xmin - die.xl) / est.bin_w), 0, nbx - 1))
        ix1 = int(np.clip(np.floor((xmax - die.xl) / est.bin_w), 0, nbx - 1))
        iy0 = int(np.clip(np.floor((ymin - die.yl) / est.bin_h), 0, nby - 1))
        iy1 = int(np.clip(np.floor((ymax - die.yl) / est.bin_h), 0, nby - 1))
        ix1, iy1 = max(ix1, ix0), max(iy1, iy0)
        ncov = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
        w = core.net_weight[e]
        for i in range(ix0, ix1 + 1):
            for j in range(iy0, iy1 + 1):
                demand_h[i, j] += w * (xmax - xmin) / ncov
                demand_v[i, j] += w * (ymax - ymin) / ncov
    for p in range(core.num_pins):
        i = int(np.clip(np.floor((pin_x[p] - die.xl) / est.bin_w), 0, nbx - 1))
        j = int(np.clip(np.floor((pin_y[p] - die.yl) / est.bin_h), 0, nby - 1))
        pin_density[i, j] += 1.0
    if config.pin_wire_length > 0:
        demand_h += 0.5 * config.pin_wire_length * pin_density
        demand_v += 0.5 * config.pin_wire_length * pin_density
    return demand_h, demand_v, pin_density


class TestRudyMaps:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_cells=st.integers(min_value=40, max_value=160),
        bins=st.sampled_from([4, 8, 16]),
        pin_wire=st.sampled_from([0.0, 0.5, 2.0]),
    )
    def test_vectorized_map_matches_naive_reference(self, seed, num_cells, bins, pin_wire):
        """Acceptance: RUDY map == naive per-net loop on random designs."""
        spec = CircuitSpec(
            name="hyp", num_cells=num_cells, seed=seed % 1000,
            logic_depth=4, num_primary_inputs=6, num_primary_outputs=6,
        )
        design = generate_circuit(spec)
        rng = np.random.default_rng(seed)
        x, y = initial_placement(design, seed=seed % 97)
        x = x + rng.uniform(-20.0, 20.0, size=x.size)  # some pins off-die
        y = y + rng.uniform(-20.0, 20.0, size=y.size)
        config = CongestionConfig(
            num_bins_x=bins, num_bins_y=bins, pin_wire_length=pin_wire
        )
        result = CongestionEstimator(design, config).estimate(x, y)
        ref_h, ref_v, ref_pins = naive_rudy(design, x, y, config)
        np.testing.assert_allclose(result.demand_h, ref_h, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(result.demand_v, ref_v, rtol=1e-9, atol=1e-9)
        np.testing.assert_array_equal(result.pin_density, ref_pins)

    def test_grid_and_capacity_from_floorplan(self, small_design):
        config = CongestionConfig(num_bins_x=8, num_bins_y=4, tracks_per_row=6.0)
        est = CongestionEstimator(small_design, config)
        die = small_design.die
        assert est.num_bins_x == 8 and est.num_bins_y == 4
        assert est.bin_w == pytest.approx(die.width / 8)
        assert est.bin_h == pytest.approx(die.height / 4)
        pitch = small_design.core.row_height / 6.0
        assert est.capacity_h == pytest.approx(est.bin_w * est.bin_h / pitch)
        assert est.capacity_v == pytest.approx(est.capacity_h)

    def test_high_degree_nets_are_skipped(self, small_design):
        core = small_design.core
        counts = np.diff(core.net_pin_offsets)
        threshold = 16
        assert (counts > threshold).any()  # the clock net at least
        est = CongestionEstimator(
            small_design, CongestionConfig(max_net_degree=threshold)
        )
        active = set(est._active_ids.tolist())
        for net_id, degree in enumerate(counts):
            if degree > threshold or degree < 2:
                assert net_id not in active
            else:
                assert net_id in active

    def test_result_metrics_are_consistent(self, small_design):
        x, y = initial_placement(small_design, seed=1)
        result = estimate_congestion(small_design, x, y)
        assert result.ratio.shape == result.demand_h.shape
        assert result.peak_overflow == pytest.approx(
            max(result.ratio.max() - 1.0, 0.0)
        )
        assert result.num_hotspots == int((result.ratio > 1.0).sum())
        # ACE is monotone: a smaller fraction averages a worse subset.
        assert result.ace(0.005) >= result.ace(0.05) - 1e-12
        hotspots = result.hotspots(5)
        ratios = [h["ratio"] for h in hotspots]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[0] == pytest.approx(result.peak_ratio)
        summary = result.summary()
        for key in ("peak_overflow", "average_overflow", "hotspot_bins",
                    "weighted_congestion", "ace_1pct"):
            assert key in summary

    def test_total_pin_count_preserved(self, small_design):
        x, y = small_design.positions()
        result = estimate_congestion(small_design, x, y)
        assert int(result.pin_density.sum()) == small_design.num_pins


class TestCellInflation:
    def test_grows_hot_cells_and_decays_cool_ones(self, fresh_small_design):
        design = fresh_small_design
        x, y = initial_placement(design, seed=0)
        config = CongestionConfig(num_bins_x=4, num_bins_y=4)
        est = CongestionEstimator(design, config)
        result = est.estimate(x, y)
        infl = CellInflation(design, InflationConfig(max_step=1.5, max_total=2.0))
        infl.update(est, result, x, y)
        bx, by = est.cell_bins(x, y)
        ratio = result.ratio[bx, by]
        movable = design.core.movable_mask
        hot = movable & (ratio > 1.0)
        if hot.any():
            assert (infl.scale[hot] > 1.0).all()
            assert infl.scale.max() <= 2.0 + 1e-12
        assert (infl.scale[~movable] == 1.0).all()
        # Decay: once congestion clears, factors relax toward 1.
        cleared = est.estimate(x, y)
        cleared._ratio = np.zeros_like(result.ratio)
        before = infl.scale.copy()
        infl.update(est, cleared, x, y)
        assert (infl.scale <= before + 1e-12).all()
        for _ in range(60):
            infl.update(est, cleared, x, y)
        assert infl.scale.max() == pytest.approx(1.0, abs=1e-3)

    def test_loop_is_noop_below_target(self, fresh_small_design):
        design = fresh_small_design
        x, y = initial_placement(design, seed=0)
        est = CongestionEstimator(design)
        peak = est.estimate(x, y).peak_overflow

        calls = []

        def place_fn(x0, y0, scale):
            calls.append(scale.copy())
            return x0, y0

        outcome = run_inflation_loop(
            design, place_fn, x, y,
            estimator=est,
            config=InflationConfig(overflow_target=peak + 1.0),
        )
        assert not calls
        assert outcome.converged
        np.testing.assert_array_equal(outcome.x, x)
        np.testing.assert_array_equal(outcome.y, y)

    def test_loop_rejects_hpwl_regressions(self, fresh_small_design):
        """A place_fn that scatters cells must never be accepted."""
        design = fresh_small_design
        x, y = initial_placement(design, seed=0)
        est = CongestionEstimator(design)
        rng = np.random.default_rng(0)
        die = design.die

        def bad_place_fn(x0, y0, scale):
            return (
                rng.uniform(die.xl, die.xh, size=x0.size),
                rng.uniform(die.yl, die.yh, size=y0.size),
            )

        outcome = run_inflation_loop(
            design, bad_place_fn, x, y,
            estimator=est,
            config=InflationConfig(overflow_target=0.0, max_rounds=2),
        )
        np.testing.assert_array_equal(outcome.x, x)
        np.testing.assert_array_equal(outcome.y, y)
        assert outcome.accepted_round == 0


class TestDensityAreaScale:
    def test_unit_scale_is_bit_identical(self, fresh_small_design):
        design = fresh_small_design
        x, y = initial_placement(design, seed=0)
        base = ElectrostaticDensity(design)
        ref = base.evaluate(x, y)
        scaled = ElectrostaticDensity(design)
        scaled.set_area_scale(np.ones(design.num_instances))
        got = scaled.evaluate(x, y)
        assert got.energy == ref.energy
        np.testing.assert_array_equal(got.grad_x, ref.grad_x)
        assert got.overflow == ref.overflow

    def test_inflation_increases_seen_area(self, fresh_small_design):
        design = fresh_small_design
        x, y = initial_placement(design, seed=0)
        density = ElectrostaticDensity(design)
        base_total = density._total_movable_area
        scale = np.full(design.num_instances, 2.0)
        density.set_area_scale(scale)
        assert density._total_movable_area == pytest.approx(2.0 * base_total)
        density.set_area_scale(None)
        assert density._total_movable_area == pytest.approx(base_total)

    def test_bad_scale_rejected(self, fresh_small_design):
        density = ElectrostaticDensity(fresh_small_design)
        with pytest.raises(ValueError):
            density.set_area_scale(np.ones(3))
        with pytest.raises(ValueError):
            density.set_area_scale(np.zeros(fresh_small_design.num_instances))


class TestFlowIntegration:
    def test_stages_registered(self):
        assert isinstance(create_stage("congestion"), CongestionStage)
        assert isinstance(create_stage("routability_repair"), RoutabilityRepairStage)

    def test_routability_preset_shape(self):
        stages = build_stages("routability", max_iterations=40)
        names = [s.name for s in stages]
        assert names == [
            "global_place",
            "routability_repair",
            "legalize",
            "congestion",
            "evaluate",
        ]
        assert get_preset("routability").description

    def test_repair_stage_requires_placement(self, fresh_small_design):
        runner = FlowRunner([RoutabilityRepairStage()])
        with pytest.raises(ValueError, match="after global_place"):
            runner.run(fresh_small_design)

    def test_congestion_stage_publishes_result(self, fresh_small_design):
        runner = build_flow("routability", max_iterations=40, refine_iterations=20)
        result = runner.run(fresh_small_design, seed=0)
        ctx = result.context
        assert ctx.congestion is not None
        assert "congestion" in ctx.metadata
        assert "routability_repair" in ctx.metadata
        assert "hotspots" in ctx.metadata["congestion"]
        ev = result.evaluation
        assert ev.congestion_peak_overflow is not None
        assert ev.congestion_peak_overflow == pytest.approx(
            ctx.congestion.peak_overflow
        )
        assert "congestion_peak_overflow" in ev.as_dict()
        assert "congestion_peak_overflow" in result.summary()

    def test_evaluator_congestion_opt_in(self, fresh_small_design):
        plain = Evaluator(fresh_small_design).evaluate()
        assert plain.congestion_peak_overflow is None
        assert "congestion_peak_overflow" not in plain.as_dict()
        scored = Evaluator(
            fresh_small_design, congestion=CongestionConfig()
        ).evaluate()
        assert scored.congestion_peak_overflow is not None
        assert scored.hpwl == plain.hpwl
        assert scored.tns == plain.tns

    def test_add_routability_retrofit(self):
        stages = build_stages("dreamplace", max_iterations=40)
        out = add_routability(stages)
        names = [s.name for s in out]
        assert "routability_repair" in names
        assert "congestion" in names
        assert names.index("routability_repair") == names.index("global_place") + 1
        assert names.index("congestion") == names.index("legalize") + 1
        evaluate = next(s for s in out if isinstance(s, EvaluateStage))
        assert evaluate.congestion is True

    def test_add_routability_requires_global_place(self):
        with pytest.raises(ValueError, match="global_place"):
            add_routability([EvaluateStage()])

    def test_add_routability_does_not_mutate_original_stages(self):
        stages = build_stages("dreamplace", max_iterations=40)
        add_routability(stages)
        original_evaluate = next(s for s in stages if isinstance(s, EvaluateStage))
        assert original_evaluate.congestion is False
        assert not any(s.name == "routability_repair" for s in stages)

    def test_explicit_inflation_subconfig_is_honored(self):
        from repro.route.flow import RoutabilityConfig

        config = RoutabilityConfig(
            inflation=InflationConfig(max_rounds=7, overflow_target=0.5)
        )
        merged = config.inflation_config()
        assert merged.max_rounds == 7
        assert merged.overflow_target == 0.5
        # Flat fields, when set, win over the sub-config (CLI --set path).
        config = RoutabilityConfig(
            inflation=InflationConfig(max_rounds=7), inflation_rounds=2
        )
        assert config.inflation_config().max_rounds == 2

    def test_inflation_config_rejects_sub_unit_max_step(self):
        with pytest.raises(ValueError, match="max_step"):
            InflationConfig(max_step=0.9).validate()


class TestCongestionStressedDesign:
    def test_registered_and_loadable(self):
        assert "sb_cong_1" in CONGESTION_SUITE
        assert "sb_cong_1" in available_design_names()
        design = load_benchmark("sb_cong_1", scale=0.5)
        assert design.name == "sb_cong_1"
        die = design.die
        assert die.width > 2.0 * die.height  # the narrow channel

    def test_design_actually_overflows(self):
        """The stress knobs must produce real overflow after placement —
        otherwise routability tests exercise nothing."""
        design = load_benchmark("sb_cong_1")
        result = build_flow("dreamplace", max_iterations=300).run(design, seed=0)
        congestion = estimate_congestion(design, result.x, result.y)
        assert congestion.peak_overflow > 0.3
        assert congestion.num_hotspots >= 5

    def test_acceptance_overflow_drop_at_bounded_hpwl_cost(self):
        """Acceptance: >= 30% peak-overflow drop at <= 2% HPWL cost versus
        the baseline wirelength/density flow on the stressed design."""
        baseline_design = load_benchmark("sb_cong_1")
        baseline = build_flow("dreamplace", max_iterations=300).run(
            baseline_design, seed=0
        )
        base_congestion = estimate_congestion(
            baseline_design, baseline.x, baseline.y
        )
        routed_design = load_benchmark("sb_cong_1")
        routed = build_flow("routability", max_iterations=300).run(
            routed_design, seed=0
        )
        peak = routed.evaluation.congestion_peak_overflow
        assert peak <= 0.7 * base_congestion.peak_overflow
        assert routed.evaluation.hpwl <= 1.02 * baseline.evaluation.hpwl
