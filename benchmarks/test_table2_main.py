"""Table II — TNS / WNS / HPWL comparison across timing-driven placers.

Runs DREAMPlace (wirelength only), DREAMPlace 4.0 (momentum net weighting),
Differentiable-TDP (smoothed path-free attraction), and Efficient-TDP (ours)
on the eight sb_mini designs, then reports per-design TNS/WNS/HPWL plus the
paper's "Average Ratio" row (every method's metric normalized by ours).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import METHODS, SUITE, save_json, save_text
from repro.evaluation import average_ratio, format_table

OURS = "Efficient-TDP (ours)"


def _metric_tables(suite_results):
    tns = {m: {} for m in METHODS}
    wns = {m: {} for m in METHODS}
    hpwl = {m: {} for m in METHODS}
    for design, per_method in suite_results.items():
        for method, result in per_method.items():
            ev = result.evaluation
            tns[method][design] = abs(ev.tns)
            wns[method][design] = abs(ev.wns)
            hpwl[method][design] = ev.hpwl
    return tns, wns, hpwl


def test_table2_main_comparison(suite_results, benchmark):
    tns, wns, hpwl = benchmark.pedantic(
        lambda: _metric_tables(suite_results), rounds=1, iterations=1
    )

    rows = []
    for design in SUITE:
        row = [design]
        for method in METHODS:
            ev = suite_results[design][method].evaluation
            row.extend([round(ev.tns, 1), round(ev.wns, 1), round(ev.hpwl, 0)])
        rows.append(row)
    avg_tns = average_ratio(tns, OURS)
    avg_wns = average_ratio(wns, OURS)
    avg_hpwl = average_ratio(hpwl, OURS)
    ratio_row = ["Average Ratio"]
    for method in METHODS:
        ratio_row.extend(
            [round(avg_tns[method], 2), round(avg_wns[method], 2), round(avg_hpwl[method], 3)]
        )
    rows.append(ratio_row)

    headers = ["Benchmark"]
    for method in METHODS:
        headers.extend([f"{method} TNS", "WNS", "HPWL"])
    table = format_table(headers, rows, title="Table II — TNS (ps), WNS (ps), HPWL comparison")
    print("\n" + table)
    save_text("table2_main.txt", table)
    save_json(
        "table2_main.json",
        {
            "per_design": {
                design: {
                    method: suite_results[design][method].evaluation.as_dict()
                    for method in METHODS
                }
                for design in SUITE
            },
            "average_ratio": {"tns": avg_tns, "wns": avg_wns, "hpwl": avg_hpwl},
        },
    )

    # Shape checks (the paper's qualitative findings that do transfer):
    # 1. every timing-driven method improves average TNS over plain DREAMPlace;
    assert avg_tns["DREAMPlace"] >= avg_tns[OURS]
    # 2. ours improves TNS and WNS over the wirelength-only baseline;
    assert avg_tns["DREAMPlace"] > 1.0
    assert avg_wns["DREAMPlace"] >= 0.95
    # 3. ours preserves HPWL better than the net-weighting baseline.
    assert avg_hpwl[OURS] <= avg_hpwl["DREAMPlace 4.0"] + 1e-9
    # 4. all placements are legal.
    for design in SUITE:
        for method in METHODS:
            ev = suite_results[design][method].evaluation
            assert ev.overlap_area == pytest.approx(0.0, abs=1e-6)
            assert ev.out_of_die_cells == 0
