"""Critical path extraction front-end (Sec. III-B).

:class:`CriticalPathExtractor` wraps the STA engine's reporting commands and
exposes the two extraction policies compared by the paper:

* ``mode="endpoint"`` — the proposed ``report_timing_endpoint(n, k)``: the
  ``n`` worst endpoints each contribute their ``k`` worst paths, covering all
  failing endpoints in O(n*k) and aligning with the TNS objective.
* ``mode="report_timing"`` — OpenTimer's ``report_timing(n)`` (optionally
  with the ``n*10`` multiplier of the ablation study): O(n^2) paths analyzed,
  concentrated on a handful of endpoints.

``n`` defaults to "all failing endpoints", which is what the placement flow
uses (Sec. III-D), and the extractor records per-call
:class:`repro.timing.report.PathExtractionStats` so Table I can be
regenerated directly from a flow run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.timing.report import (
    PathExtractionStats,
    TimingPath,
    report_timing,
    report_timing_endpoint,
)
from repro.timing.sta import STAEngine, STAResult


@dataclass
class ExtractionConfig:
    """Which extraction command the flow uses and with what parameters."""

    mode: str = "endpoint"          # "endpoint" or "report_timing"
    paths_per_endpoint: int = 1     # k in report_timing_endpoint(n, k)
    endpoint_multiplier: int = 1    # n multiplier for report_timing(n * mult)
    max_endpoints: Optional[int] = None  # cap on n (None = all failing endpoints)

    def __post_init__(self) -> None:
        if self.mode not in {"endpoint", "report_timing"}:
            raise ValueError("mode must be 'endpoint' or 'report_timing'")
        if self.paths_per_endpoint < 1:
            raise ValueError("paths_per_endpoint must be >= 1")
        if self.endpoint_multiplier < 1:
            raise ValueError("endpoint_multiplier must be >= 1")

    def describe(self) -> str:
        if self.mode == "endpoint":
            return f"report_timing_endpoint(n,{self.paths_per_endpoint})"
        return f"report_timing(n*{self.endpoint_multiplier})"


class CriticalPathExtractor:
    """Extract critical paths from an annotated STA engine."""

    def __init__(self, engine: STAEngine, config: Optional[ExtractionConfig] = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ExtractionConfig()
        self.history: List[PathExtractionStats] = []

    def extract(
        self,
        result: Optional[STAResult] = None,
        *,
        num_endpoints: Optional[int] = None,
    ) -> Tuple[List[TimingPath], PathExtractionStats]:
        """Extract critical paths according to the configured policy.

        ``num_endpoints`` overrides the automatic "all failing endpoints"
        choice of ``n``.  The call's statistics are appended to
        :attr:`history` so a flow accumulates its Table I data as it runs.
        """
        if result is None:
            result = self.engine.last_result or self.engine.update_timing()
        n = num_endpoints
        if n is None:
            n = result.num_failing_endpoints
            if self.config.max_endpoints is not None:
                n = min(n, self.config.max_endpoints)
        if n <= 0:
            stats = PathExtractionStats(
                command=self.config.describe(),
                complexity="O(n*k)" if self.config.mode == "endpoint" else "O(n^2)",
                num_paths=0,
                num_endpoints=0,
                num_pin_pairs=0,
                elapsed_seconds=0.0,
            )
            self.history.append(stats)
            return [], stats

        if self.config.mode == "endpoint":
            paths, stats = report_timing_endpoint(
                self.engine,
                n,
                self.config.paths_per_endpoint,
                result=result,
                failing_only=True,
            )
        else:
            paths, stats = report_timing(
                self.engine,
                n * self.config.endpoint_multiplier,
                result=result,
                failing_only=True,
                max_paths_per_endpoint=32,
            )
        self.history.append(stats)
        return paths, stats

    @property
    def total_extraction_time(self) -> float:
        """Accumulated wall-clock seconds spent extracting paths."""
        return sum(s.elapsed_seconds for s in self.history)
