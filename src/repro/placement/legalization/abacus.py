"""Abacus legalization (Spindler, Schlichtmann, Johannes, ISPD'08).

Cells are processed in order of their global-placement x coordinate and
inserted into the row that minimizes displacement.  Within a row, cells are
kept in clusters; when the newly inserted cell's cluster overlaps its
predecessor, the clusters are merged and the merged cluster is re-placed at
its quadratic-optimal position (the weighted mean of its members' desired
positions minus their offsets), clamped to the row.  The paper's flow runs
Abacus after global placement before writing the DEF (Fig. 1).

Array-backed hot path (PR 10)
-----------------------------

:meth:`AbacusLegalizer.legalize` no longer mutates per-row ``List[_Cluster]``
object lists.  Each row keeps *flat stacks* — parallel ``float64`` arrays for
the cluster ``weight``/``width``/``q`` terms, an ``int32`` array of each
cluster's first-cell slot, and an ``int32`` cell-order buffer — so the
collapse loop works on array slots with the exact arithmetic order of the
reference, and the final cluster→cell unroll is a per-cluster ``cumsum``
over widths (the same sequential left fold as the scalar loop, so the
positions are bitwise identical).

The per-cell candidate search no longer ``argsort``s all row distances for
every cell.  ``row_y`` is sorted ascending (rows are built bottom-up), so
the ``legalize_rowband`` kernel seeds a two-pointer expansion with
``searchsorted`` and emits the ``max_candidate_rows`` nearest rows per cell
in increasing |row_y - y| order.  Tie-break: equidistant rows resolve to the
*lower* row index, matching a stable argsort of the distances (the
``_reference_legalize`` twin uses exactly that, and the parity suite asserts
bitwise equality).  With ``workers > 0`` the candidate bands shard across
the :mod:`repro.parallel` kernel pool — the band computation is elementwise
per cell, so any worker count (including 0, serial) yields identical bands,
and the parent replays the order-sensitive sequential insertion itself.

``_reference_legalize`` keeps the original object-based implementation as
the bitwise twin for property tests and the legalization benches.

Row-overflow surfacing (PR 10 bugfix): ``_Cluster.optimal_x`` clamps a
cluster to ``max(row.xl, row.xh - width)``, which silently lets a cluster
wider than its row (reachable with ``capacity_slack > 0``, and guarded
against float drift in the stock checks) spill past ``row.xh``.  Both paths
now measure each row's rightmost occupied edge after placement and report
``LegalizationResult.num_overfull_rows``; overfull rows fail ``success``
exactly like unplaced cells do, so the flow's greedy fallback sees them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.netlist.core import Row, as_core
from repro.obs import span
from repro.parallel.kernels import run_kernel

# Rightmost-edge tolerance for the row-overflow check (same magnitude the
# geometry tests use for die/site assertions).
_OVERFLOW_TOL = 1e-6


def _release_block(runner, block) -> None:
    """weakref.finalize hook: free a consumer's shared block when it dies."""
    try:
        runner.release(block)
    except Exception:  # pragma: no cover - pool already shut down
        pass


@dataclass
class _Cluster:
    """A maximal group of abutting cells in one row (Abacus bookkeeping)."""

    weight: float = 0.0   # e_c: sum of cell weights
    width: float = 0.0    # w_c: sum of cell widths
    q: float = 0.0        # q_c: sum of weight * (desired_x - offset_in_cluster)
    cells: List[int] = field(default_factory=list)

    def add_cell(self, cell: int, desired_x: float, cell_width: float, cell_weight: float = 1.0) -> None:
        self.cells.append(cell)
        self.q += cell_weight * (desired_x - self.width)
        self.weight += cell_weight
        self.width += cell_width

    def add_cluster(self, other: "_Cluster") -> None:
        self.cells.extend(other.cells)
        self.q += other.q - other.weight * self.width
        self.weight += other.weight
        self.width += other.width

    def optimal_x(self, row: Row) -> float:
        x = self.q / max(self.weight, 1e-12)
        return float(np.clip(x, row.xl, max(row.xl, row.xh - self.width)))


@dataclass
class LegalizationResult:
    """Outcome of a legalization pass."""

    x: np.ndarray
    y: np.ndarray
    total_displacement: float
    max_displacement: float
    num_failed: int
    # Rows whose rightmost occupied edge spills past row.xh (over-wide
    # clusters let through by capacity_slack, or float drift in the
    # capacity bookkeeping).  Counted into the success/fallback semantics
    # exactly like unplaced cells.
    num_overfull_rows: int = 0

    @property
    def success(self) -> bool:
        return self.num_failed == 0 and self.num_overfull_rows == 0


class AbacusLegalizer:
    """Row-based Abacus legalizer for standard cells.

    ``capacity_slack`` admits cells into a row up to
    ``row.width * (1 + capacity_slack)`` total width.  The default (0.0)
    reproduces the strict capacity check bitwise; a positive slack trades
    silent placement failures on overfilled dies (cells abandoned at their
    illegal global-placement positions) for measurable row overflow, which
    is then surfaced via ``num_overfull_rows``.

    ``workers``/``runner`` shard the per-cell candidate-row bands across the
    kernel pool (see the module docstring); the sequential cluster insertion
    always runs in the parent, so results are bitwise identical for any
    worker count.
    """

    def __init__(
        self,
        design,
        *,
        site_aligned: bool = True,
        max_candidate_rows: int = 24,
        capacity_slack: float = 0.0,
        workers: int = 0,
        runner=None,
    ) -> None:
        self.core = as_core(design)
        self.site_aligned = site_aligned
        self.max_candidate_rows = max_candidate_rows
        self.capacity_slack = float(capacity_slack)
        self.workers = int(workers)
        self._runner_override = runner
        self._runner = None
        self._runner_resolved = False
        self.rows = self.core.rows()
        if not self.rows:
            raise ValueError("Design has no placement rows (die too short?)")
        self._row_y = np.array([r.y for r in self.rows], dtype=np.float64)

    # ------------------------------------------------------------------
    # Candidate row bands (the parallel seam)
    # ------------------------------------------------------------------
    def _get_runner(self):
        """The kernel runner (``None`` = serial), resolved lazily once."""
        if not self._runner_resolved:
            if self._runner_override is not None:
                self._runner = self._runner_override
            else:
                from repro.parallel import get_runner

                self._runner = get_runner(self.workers)
            self._runner_resolved = True
        return self._runner

    def _candidate_bands(self, cell_y: np.ndarray, k: int) -> np.ndarray:
        """Flat ``(n*k,)`` int32 nearest-row bands for the ordered cells.

        Serial and sharded paths run the same ``legalize_rowband`` kernel —
        the work is elementwise per cell, so the bands are bitwise
        identical for any worker count.
        """
        n = int(cell_y.size)
        cand = np.empty(n * k, dtype=np.int32)
        runner = self._get_runner()
        if runner is None or n == 0:
            run_kernel(
                "legalize_rowband",
                {"row_y": self._row_y, "cell_y": cell_y, "cand_rows": cand},
                (0, n, k),
            )
            return cand
        from repro.parallel.engine import split_ranges

        block = runner.register(
            {"row_y": self._row_y, "cell_y": cell_y, "cand_rows": cand}
        )
        try:
            tasks = [(s, e, k) for s, e in split_ranges(n, runner.workers)]
            runner.run("legalize_rowband", [block], tasks)
            # Private copy: the shared segment dies with the block release.
            return block.views["cand_rows"].copy()
        finally:
            _release_block(runner, block)

    # ------------------------------------------------------------------
    # Array-backed hot path
    # ------------------------------------------------------------------
    def legalize(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> LegalizationResult:
        """Legalize movable cells; returns legal positions for all instances.

        Bitwise identical to :meth:`_reference_legalize` (property-tested):
        the flat-stack collapse performs the exact scalar arithmetic of the
        ``_Cluster`` methods in the same order, the candidate bands replay
        the stable-argsort row order, and the ``cumsum`` unroll is the same
        sequential fold as the reference cursor walk.
        """
        arrays = self.core
        if x is None or y is None:
            x, y = arrays.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()

        movable = arrays.movable_index
        widths = arrays.inst_width
        order = movable[np.argsort(x[movable], kind="stable")]
        num_rows = len(self.rows)
        n = int(order.size)
        k = min(self.max_candidate_rows, num_rows)

        runner = self._get_runner()
        with span(
            "legalize.abacus",
            cells=n,
            rows=num_rows,
            parallel=runner is not None,
        ):
            with span("legalize.candidates", parallel=runner is not None):
                cand = self._candidate_bands(y[order], k).reshape(n, k).tolist()

            # Per-row flat stacks: cluster weight/width/q + first-cell slot,
            # plus the row's cell-order buffer.  Capacities grow by doubling;
            # lengths live in plain lists (the loop below is scalar-hot).
            stack_w = [np.empty(16, dtype=np.float64) for _ in range(num_rows)]
            stack_wd = [np.empty(16, dtype=np.float64) for _ in range(num_rows)]
            stack_q = [np.empty(16, dtype=np.float64) for _ in range(num_rows)]
            stack_first = [np.empty(16, dtype=np.int32) for _ in range(num_rows)]
            stack_len = [0] * num_rows
            row_cells = [np.empty(16, dtype=np.int32) for _ in range(num_rows)]
            row_ncells = [0] * num_rows
            used = [0.0] * num_rows

            row_xl = [r.xl for r in self.rows]
            row_xh = [r.xh for r in self.rows]
            # Same float expression as the reference capacity check
            # (`row.width * 1.0` is exact, so slack=0 reproduces it bitwise).
            slack = 1.0 + self.capacity_slack
            row_cap = [r.width * slack + 1e-9 for r in self.rows]

            # Lazily-refreshed min-heap over (used, row): the fallback argmin.
            # One entry per row; an entry whose stored value no longer matches
            # ``used`` is stale (rows only fill up) and gets refreshed in
            # place.  (value, row) ordering makes ties resolve to the lowest
            # row index — the same row ``np.argmin(row_used)`` returns.
            heap = [(0.0, r) for r in range(num_rows)]
            heapreplace = heapq.heapreplace

            xs = x[order].tolist()
            ws = widths[order].tolist()

            legal_x = x.copy()
            legal_y = y.copy()
            # Row assignment per ordered cell (-1 = failed); y is written
            # back vectorized after the loop.
            assigned = [-1] * n
            num_failed = 0
            insert = self._insert_cell

            for i in range(n):
                desired_x = xs[i]
                width = ws[i]
                placed = False
                for r in cand[i]:
                    if r < 0:
                        break
                    if used[r] + width > row_cap[r]:
                        continue
                    insert(
                        i, desired_x, width, r, row_xl[r], row_xh[r],
                        stack_w, stack_wd, stack_q, stack_first, stack_len,
                        row_cells, row_ncells,
                    )
                    used[r] += width
                    assigned[i] = r
                    placed = True
                    break
                if not placed:
                    # Last resort: least-filled row, even if far away
                    # (first minimum wins, like np.argmin).
                    while True:
                        u, r = heap[0]
                        if u == used[r]:
                            break
                        heapreplace(heap, (used[r], r))
                    if used[r] + width <= row_cap[r]:
                        insert(
                            i, desired_x, width, r, row_xl[r], row_xh[r],
                            stack_w, stack_wd, stack_q, stack_first, stack_len,
                            row_cells, row_ncells,
                        )
                        used[r] += width
                        assigned[i] = r
                    else:
                        num_failed += 1

            assigned_arr = np.asarray(assigned, dtype=np.int64)
            ok = assigned_arr >= 0
            legal_y[order[ok]] = self._row_y[assigned_arr[ok]]

            num_overfull = self._unroll(
                legal_x, order, widths,
                stack_w, stack_wd, stack_q, stack_first, stack_len,
                row_cells, row_ncells,
            )

        displacement = np.abs(legal_x[movable] - x[movable]) + np.abs(
            legal_y[movable] - y[movable]
        )
        return LegalizationResult(
            x=legal_x,
            y=legal_y,
            total_displacement=float(displacement.sum()),
            max_displacement=float(displacement.max()) if displacement.size else 0.0,
            num_failed=num_failed,
            num_overfull_rows=num_overfull,
        )

    def _insert_cell(
        self,
        slot: int,
        desired_x: float,
        width: float,
        r: int,
        xl: float,
        xh: float,
        stack_w: List[np.ndarray],
        stack_wd: List[np.ndarray],
        stack_q: List[np.ndarray],
        stack_first: List[np.ndarray],
        stack_len: List[int],
        row_cells: List[np.ndarray],
        row_ncells: List[int],
    ) -> None:
        """Append cell ``slot`` to row ``r`` and collapse overlapping clusters.

        The scalar arithmetic replays ``_Cluster.add_cell`` /
        ``add_cluster`` / ``optimal_x`` term for term (including the
        ``0.0 + 1.0 * (x - 0.0)`` fresh-cluster form), so every merged
        cluster carries bitwise the same ``weight/width/q`` as the
        reference object path.
        """
        nc = row_ncells[r]
        buf = row_cells[r]
        if nc == len(buf):
            buf = self._grow_i32(buf, r, row_cells)
        buf[nc] = slot
        row_ncells[r] = nc + 1

        # The four stacks are created and doubled in lockstep, so one
        # capacity check covers all of them.
        m = stack_len[r]
        sw = stack_w[r]
        if m == len(sw):
            sw = self._grow_f64(sw, r, stack_w)
            self._grow_f64(stack_wd[r], r, stack_wd)
            self._grow_f64(stack_q[r], r, stack_q)
            self._grow_i32(stack_first[r], r, stack_first)
        swd = stack_wd[r]
        sq = stack_q[r]
        sf = stack_first[r]

        # Fresh single-cell cluster (held in locals while collapsing).
        top_w = 0.0 + 1.0
        top_wd = 0.0 + width
        top_q = 0.0 + 1.0 * (desired_x - 0.0)
        top_first = nc

        # Collapse: while the top cluster overlaps its predecessor, merge.
        # Reads convert to Python floats once — the arithmetic is the same
        # IEEE double op either way, but scalar np.float64 math is slower.
        while m >= 1:
            p_w = float(sw[m - 1])
            p_wd = float(swd[m - 1])
            p_q = float(sq[m - 1])
            t = p_q / (p_w if p_w >= 1e-12 else 1e-12)
            hi = xh - p_wd
            if hi < xl:
                hi = xl
            prev_x = t if t > xl else xl
            if prev_x > hi:
                prev_x = hi
            t = top_q / (top_w if top_w >= 1e-12 else 1e-12)
            hi = xh - top_wd
            if hi < xl:
                hi = xl
            top_x = t if t > xl else xl
            if top_x > hi:
                top_x = hi
            if prev_x + p_wd <= top_x + 1e-9:
                break
            # prev.add_cluster(top): prev becomes the new top cluster.
            top_q = p_q + (top_q - top_w * p_wd)
            top_w = p_w + top_w
            top_wd = p_wd + top_wd
            top_first = sf[m - 1]
            m -= 1

        sw[m] = top_w
        swd[m] = top_wd
        sq[m] = top_q
        sf[m] = top_first
        stack_len[r] = m + 1

    @staticmethod
    def _grow_i32(buf: np.ndarray, r: int, store: List[np.ndarray]) -> np.ndarray:
        grown = np.empty(2 * len(buf), dtype=np.int32)
        grown[: len(buf)] = buf
        store[r] = grown
        return grown

    @staticmethod
    def _grow_f64(buf: np.ndarray, r: int, store: List[np.ndarray]) -> np.ndarray:
        grown = np.empty(2 * len(buf), dtype=np.float64)
        grown[: len(buf)] = buf
        store[r] = grown
        return grown

    def _unroll(
        self,
        legal_x: np.ndarray,
        order: np.ndarray,
        widths: np.ndarray,
        stack_w: List[np.ndarray],
        stack_wd: List[np.ndarray],
        stack_q: List[np.ndarray],
        stack_first: List[np.ndarray],
        stack_len: List[int],
        row_cells: List[np.ndarray],
        row_ncells: List[int],
    ) -> int:
        """Write final positions (cumsum per cluster) and count overfull rows.

        ``cumsum`` over ``[cursor, w_0, ..., w_{last-1}]`` is the identical
        sequential left fold as the reference's ``cursor += width`` walk, so
        positions — and the measured row end — match it bitwise.
        """
        num_overfull = 0
        site_aligned = self.site_aligned
        for r, row in enumerate(self.rows):
            m = stack_len[r]
            if m == 0:
                continue
            nc = row_ncells[r]
            slots = row_cells[r][:nc]
            cell_ids = order[slots]
            w_r = widths[cell_ids]
            sw = stack_w[r]
            swd = stack_wd[r]
            sq = stack_q[r]
            sf = stack_first[r]
            xl = row.xl
            xh = row.xh
            site = row.site_width
            row_end = xl
            for c in range(m):
                e_c = float(sw[c])
                wd = float(swd[c])
                q = float(sq[c])
                t = q / max(e_c, 1e-12)
                cursor = float(np.clip(t, xl, max(xl, xh - wd)))
                if site_aligned:
                    cursor = xl + round((cursor - xl) / site) * site
                    cursor = max(xl, min(cursor, xh - wd))
                a = int(sf[c])
                b = int(sf[c + 1]) if c + 1 < m else nc
                seg = w_r[a:b]
                vals = np.empty(b - a, dtype=np.float64)
                vals[0] = cursor
                vals[1:] = seg[:-1]
                np.cumsum(vals, out=vals)
                legal_x[cell_ids[a:b]] = vals
                end = float(vals[-1]) + float(seg[-1])
                if end > row_end:
                    row_end = end
            if row_end > xh + _OVERFLOW_TOL:
                num_overfull += 1
        return num_overfull

    # ------------------------------------------------------------------
    # Reference twin (object-based; kept for parity tests and benches)
    # ------------------------------------------------------------------
    def _reference_legalize(
        self,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> LegalizationResult:
        """The pre-PR-10 object-based implementation (bitwise twin).

        One documented behavior pin relative to the original: the candidate
        rows use a *stable* argsort of |row_y - desired_y|, so equidistant
        rows resolve to the lower row index — the order the two-pointer
        band expansion produces.  (The original used the default introsort,
        whose tie order was unspecified; exact distance ties require a cell
        exactly midway between two rows.)
        """
        arrays = self.core
        if x is None or y is None:
            x, y = arrays.positions()
        x = np.asarray(x, dtype=np.float64).copy()
        y = np.asarray(y, dtype=np.float64).copy()

        movable = arrays.movable_index
        widths = arrays.inst_width
        order = movable[np.argsort(x[movable], kind="stable")]

        row_clusters: List[List[_Cluster]] = [[] for _ in self.rows]
        row_used = np.zeros(len(self.rows), dtype=np.float64)
        row_y = np.array([r.y for r in self.rows])
        slack = 1.0 + self.capacity_slack

        legal_x = x.copy()
        legal_y = y.copy()
        num_failed = 0

        for cell in order:
            cell = int(cell)
            desired_x = float(x[cell])
            desired_y = float(y[cell])
            width = float(widths[cell])
            candidate_rows = np.argsort(np.abs(row_y - desired_y), kind="stable")
            placed = False
            for row_idx in candidate_rows[: self.max_candidate_rows]:
                row_idx = int(row_idx)
                row = self.rows[row_idx]
                if row_used[row_idx] + width > row.width * slack + 1e-9:
                    continue
                self._insert_into_row(cell, desired_x, width, row, row_clusters[row_idx])
                row_used[row_idx] += width
                legal_y[cell] = row.y
                placed = True
                break
            if not placed:
                # Last resort: least-filled row, even if far away.
                row_idx = int(np.argmin(row_used))
                row = self.rows[row_idx]
                if row_used[row_idx] + width <= row.width * slack + 1e-9:
                    self._insert_into_row(cell, desired_x, width, row, row_clusters[row_idx])
                    row_used[row_idx] += width
                    legal_y[cell] = row.y
                else:
                    num_failed += 1

        num_overfull = 0
        for row, clusters in zip(self.rows, row_clusters):
            row_end = row.xl
            for cluster in clusters:
                cursor = cluster.optimal_x(row)
                if self.site_aligned:
                    cursor = row.xl + round((cursor - row.xl) / row.site_width) * row.site_width
                    cursor = max(row.xl, min(cursor, row.xh - cluster.width))
                for cell in cluster.cells:
                    legal_x[cell] = cursor
                    cursor += widths[cell]
                if cursor > row_end:
                    row_end = cursor
            if clusters and row_end > row.xh + _OVERFLOW_TOL:
                num_overfull += 1

        displacement = np.abs(legal_x[movable] - x[movable]) + np.abs(
            legal_y[movable] - y[movable]
        )
        return LegalizationResult(
            x=legal_x,
            y=legal_y,
            total_displacement=float(displacement.sum()),
            max_displacement=float(displacement.max()) if displacement.size else 0.0,
            num_failed=num_failed,
            num_overfull_rows=num_overfull,
        )

    def _insert_into_row(
        self,
        cell: int,
        desired_x: float,
        width: float,
        row: Row,
        clusters: List[_Cluster],
    ) -> None:
        cluster = _Cluster()
        cluster.add_cell(cell, desired_x, width)
        clusters.append(cluster)
        # Collapse: while the last cluster overlaps its predecessor, merge.
        while len(clusters) >= 2:
            last = clusters[-1]
            prev = clusters[-2]
            if prev.optimal_x(row) + prev.width <= last.optimal_x(row) + 1e-9:
                break
            prev.add_cluster(last)
            clusters.pop()

    def apply(self, result: LegalizationResult) -> None:
        """Write legalized positions back onto the design core."""
        self.core.set_positions(result.x, result.y)
