"""Fixture: a pure worker kernel (order-independent folds only)."""

import numpy as np


def register_kernel(name):
    def wrap(fn):
        return fn

    return wrap


@register_kernel("good_extrema")
def good_extrema(arrays, start, end):
    # IEEE min/max folds are order-independent; bincount runs in the
    # parent replay, and disjoint-slice writes are race-free by contract.
    cmax = arrays["cmax"]
    cmax[start:end].fill(-np.inf)
    np.maximum.at(cmax, arrays["seg"][start:end], arrays["c"][start:end])
    np.minimum.reduceat(arrays["c"][start:end], arrays["bounds"][start:end])
    arrays["out"][start:end] = arrays["c"][start:end]
    return None


def helper_outside_kernel(values):
    # Not a kernel: free to use order-sensitive folds.
    return np.add.reduceat(values, [0])
