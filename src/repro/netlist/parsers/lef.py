"""Simplified LEF (Library Exchange Format) parser.

Supported constructs::

    UNITS ... END UNITS            (ignored)
    SITE <name> ... END <name>     (SIZE w BY h captured as the default site)
    MACRO <name>
        CLASS CORE ;
        SIZE <w> BY <h> ;
        PIN <pin>
            DIRECTION INPUT|OUTPUT|INOUT ;
            USE SIGNAL|CLOCK ;
            CAPACITANCE <value> ;          (non-standard but convenient)
            PORT ... RECT xl yl xh yh ... END
        END <pin>
    END <name>

The parser produces a :class:`repro.netlist.Library`.  Pin offsets are taken
from the center of the first RECT of the pin's PORT when present, otherwise 0.
Timing arcs are *not* described by LEF; combine with a Liberty file via
:func:`repro.netlist.parsers.liberty.parse_liberty` and ``Library.merge`` or
attach arcs programmatically.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netlist.library import CellType, Library, LibraryPin, PinDirection


def parse_lef_file(path: str, library: Optional[Library] = None) -> Library:
    """Parse a LEF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_lef(handle.read(), library)


def parse_lef(text: str, library: Optional[Library] = None) -> Library:
    """Parse LEF text into a :class:`Library` (a new one unless provided)."""
    lib = library if library is not None else Library("lef")
    tokens = _tokenize(text)
    i = 0
    site_size: Tuple[float, float] | None = None
    while i < len(tokens):
        tok = tokens[i].upper()
        if tok == "SITE":
            i, site_size = _parse_site(tokens, i)
        elif tok == "MACRO":
            i = _parse_macro(tokens, i, lib)
        else:
            i += 1
    if site_size is not None:
        # Stash the default site on the library for floorplan construction.
        lib.default_site_width = site_size[0]  # type: ignore[attr-defined]
        lib.default_site_height = site_size[1]  # type: ignore[attr-defined]
    return lib


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens.extend(line.replace(";", " ; ").split())
    return tokens


def _parse_site(tokens: List[str], i: int) -> Tuple[int, Tuple[float, float] | None]:
    # SITE <name> ... SIZE w BY h ; ... END <name>
    name = tokens[i + 1]
    i += 2
    size: Tuple[float, float] | None = None
    while i < len(tokens):
        tok = tokens[i].upper()
        if tok == "SIZE":
            size = (float(tokens[i + 1]), float(tokens[i + 3]))
            i += 4
        elif tok == "END" and i + 1 < len(tokens) and tokens[i + 1] == name:
            return i + 2, size
        else:
            i += 1
    return i, size


def _parse_macro(tokens: List[str], i: int, lib: Library) -> int:
    name = tokens[i + 1]
    i += 2
    width = height = 0.0
    pins: List[LibraryPin] = []
    is_macro_class = False
    while i < len(tokens):
        tok = tokens[i].upper()
        if tok == "SIZE":
            width = float(tokens[i + 1])
            height = float(tokens[i + 3])
            i += 4
        elif tok == "CLASS":
            is_macro_class = tokens[i + 1].upper() == "BLOCK"
            i += 2
        elif tok == "PIN":
            i, pin = _parse_pin(tokens, i)
            pins.append(pin)
        elif tok == "END" and i + 1 < len(tokens) and tokens[i + 1] == name:
            i += 2
            break
        else:
            i += 1
    cell = CellType(name, width=width, height=height, is_macro=is_macro_class)
    for pin in pins:
        cell.add_pin(pin)
    lib.add_cell(cell)
    return i


def _parse_pin(tokens: List[str], i: int) -> Tuple[int, LibraryPin]:
    name = tokens[i + 1]
    i += 2
    direction = PinDirection.INPUT
    capacitance = 0.0
    is_clock = False
    rect: Tuple[float, float, float, float] | None = None
    while i < len(tokens):
        tok = tokens[i].upper()
        if tok == "DIRECTION":
            direction = PinDirection.from_string(tokens[i + 1])
            i += 2
        elif tok == "USE":
            is_clock = tokens[i + 1].upper() == "CLOCK"
            i += 2
        elif tok == "CAPACITANCE":
            capacitance = float(tokens[i + 1])
            i += 2
        elif tok == "RECT":
            if rect is None:
                rect = (
                    float(tokens[i + 1]),
                    float(tokens[i + 2]),
                    float(tokens[i + 3]),
                    float(tokens[i + 4]),
                )
            i += 5
        elif tok == "END" and i + 1 < len(tokens) and tokens[i + 1] == name:
            i += 2
            break
        else:
            i += 1
    if rect is not None:
        offset_x = 0.5 * (rect[0] + rect[2])
        offset_y = 0.5 * (rect[1] + rect[3])
    else:
        offset_x = offset_y = 0.0
    pin = LibraryPin(
        name,
        direction,
        capacitance=capacitance,
        offset_x=offset_x,
        offset_y=offset_y,
        is_clock=is_clock,
    )
    return i, pin
