"""Table I — timing statistics of the critical path extraction methods.

Regenerates the paper's Table I on the synthetic suite: for a coarse
(wirelength-driven) placement of ``sb_mini_1``, compare

* ``report_timing(n)``            (OpenTimer-style, O(n^2)),
* ``report_timing(n*10)``,
* ``report_timing_endpoint(n,1)`` (proposed, O(n*k)),
* ``report_timing_endpoint(n,10)``,

where ``n`` is the number of failing endpoints, reporting number of paths,
unique endpoints, unique pin pairs, and wall-clock time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_json, save_text
from repro.baselines import DreamPlaceBaseline
from repro.benchgen import load_benchmark
from repro.evaluation import format_table
from repro.placement import PlacementConfig
from repro.timing import STAEngine, report_timing, report_timing_endpoint


@pytest.fixture(scope="module")
def coarse_placement_engine():
    design = load_benchmark("sb_mini_1")
    DreamPlaceBaseline(design, PlacementConfig(max_iterations=450, seed=1)).run()
    engine = STAEngine(design)
    engine.update_timing()
    return engine


def _collect_rows(engine):
    result = engine.last_result
    n = result.num_failing_endpoints
    rows = []

    def add(stats):
        rows.append(stats.as_row())

    # report_timing(n): per-endpoint enumeration capped to keep the O(n^2)
    # variant tractable on the synthetic scale; coverage behaviour is what
    # Table I demonstrates and is unaffected by the cap.
    _, stats = report_timing(engine, n, failing_only=True, max_paths_per_endpoint=16)
    add(stats)
    _, stats = report_timing(engine, n * 10, failing_only=True, max_paths_per_endpoint=16)
    add(stats)
    _, stats = report_timing_endpoint(engine, n, 1, failing_only=True)
    add(stats)
    _, stats = report_timing_endpoint(engine, n, 10, failing_only=True)
    add(stats)
    return n, rows


def test_table1_extraction_statistics(coarse_placement_engine, benchmark):
    engine = coarse_placement_engine
    n, rows = benchmark.pedantic(
        lambda: _collect_rows(engine), rounds=1, iterations=1
    )

    table = format_table(
        ["Command", "Complexity", "#Paths", "#Endpoints", "#PinPairs", "Time(s)"],
        [
            [r["command"], r["complexity"], r["num_paths"], r["num_endpoints"],
             r["num_pin_pairs"], r["time_sec"]]
            for r in rows
        ],
        title=f"Table I — critical path extraction statistics (sb_mini_1, {n} failing endpoints)",
        float_format="{:.4f}",
    )
    print("\n" + table)
    save_text("table1_extraction.txt", table)
    save_json("table1_extraction.json", {"failing_endpoints": n, "rows": rows})

    rt_n, rt_10n, ep_1, ep_10 = rows
    # The paper's qualitative claims:
    # 1. endpoint extraction covers every failing endpoint,
    assert ep_1["num_endpoints"] == n
    # 2. report_timing concentrates on far fewer endpoints,
    assert rt_n["num_endpoints"] <= ep_1["num_endpoints"]
    # 3. endpoint extraction yields at least as many unique pin pairs,
    assert ep_1["num_pin_pairs"] >= rt_n["num_pin_pairs"]
    # 4. k=10 extracts more paths (and pairs) than k=1 at higher cost.
    assert ep_10["num_paths"] >= ep_1["num_paths"]
    assert ep_10["num_pin_pairs"] >= ep_1["num_pin_pairs"]
