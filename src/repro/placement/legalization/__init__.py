"""Row-based legalization algorithms (Abacus and a greedy Tetris-style fallback)."""

from repro.placement.legalization.abacus import AbacusLegalizer
from repro.placement.legalization.greedy import GreedyLegalizer

__all__ = ["AbacusLegalizer", "GreedyLegalizer"]
